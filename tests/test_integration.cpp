// End-to-end reproduction checks: the paper's qualitative claims (Section
// 3.3) must hold on the synthetic scenarios at the default network
// conditions (11 Mbps, 1 ms).
#include <gtest/gtest.h>

#include <map>

#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

using workloads::ScenarioBundle;

std::map<std::string, sim::SimResult> run_all(const ScenarioBundle& scenario,
                                              const sim::SimConfig& config,
                                              bool with_static = false) {
  std::vector<std::string> names = policies::standard_policy_names();
  if (with_static) names.push_back("flexfetch-static");
  std::map<std::string, sim::SimResult> out;
  for (const auto& name : names) {
    auto policy = policies::make_policy(name, scenario.profiles,
                                        &scenario.oracle_future);
    sim::Simulator simulator(config, scenario.programs, *policy);
    out[name] = simulator.run();
  }
  return out;
}

// Section 3.3.1 / Figure 1: with a fast, low-latency WNIC the ordering is
// BlueFS > Disk-only > WNIC-only > FlexFetch.
TEST(Integration, GrepMakeOrderingMatchesFigure1) {
  // Zero network latency, as the paper's leftmost Figure 1(a) point.
  sim::SimConfig config;
  config.wnic = config.wnic.with_latency(Seconds{0.0});
  const auto r = run_all(workloads::scenario_grep_make(1), config);
  const Joules ff = r.at("flexfetch").total_energy();
  const Joules bluefs = r.at("bluefs").total_energy();
  const Joules disk = r.at("disk-only").total_energy();
  const Joules wnic = r.at("wnic-only").total_energy();
  EXPECT_LT(ff, wnic);
  EXPECT_LT(wnic, disk);
  // BlueFS wastes at least what Disk-only spends (our BlueFS degenerates
  // to Disk-only once the disk is pinned up; the paper's is notably worse
  // — deviation recorded in EXPERIMENTS.md).
  EXPECT_LT(disk, bluefs);
}

// Section 3.3.2 / Figure 2: FlexFetch tracks WNIC-only; BlueFS is at least
// as expensive as Disk-only; the disk is the wrong device for sparse
// streaming.
TEST(Integration, MplayerMatchesFigure2) {
  const auto r = run_all(workloads::scenario_mplayer(1), sim::SimConfig{});
  const Joules ff = r.at("flexfetch").total_energy();
  const Joules wnic = r.at("wnic-only").total_energy();
  const Joules disk = r.at("disk-only").total_energy();
  const Joules bluefs = r.at("bluefs").total_energy();
  EXPECT_NEAR(ff.value(), wnic.value(), (0.07 * wnic).value());   // "almost the same as WNIC-only".
  EXPECT_GT(disk, 1.3 * ff);            // The disk wastes idle energy.
  // BlueFS wastes energy on both devices: dozens of futile ghost-hint spin
  // cycles on top of serving the stream over the WNIC. (Deviation from the
  // paper noted in EXPERIMENTS.md: our duty-cycled Disk-only is itself
  // costly, so BlueFS lands below it rather than above.)
  EXPECT_GT(bluefs, 1.4 * ff);
  EXPECT_GT(bluefs, 1.4 * wnic);
}

// Section 3.3.2 / Figure 2(b): at low WNIC bandwidth FlexFetch switches to
// the local disk and saves substantially versus WNIC-only.
TEST(Integration, MplayerSwitchesToDiskAtLowBandwidth) {
  sim::SimConfig config;
  config.wnic = config.wnic.with_bandwidth_mbps(1.0);
  const auto scenario = workloads::scenario_mplayer(1);
  const auto r = run_all(scenario, config);
  const auto& ff = r.at("flexfetch");
  const auto& wnic = r.at("wnic-only");
  EXPECT_GT(ff.disk_bytes, ff.net_bytes);  // Switched to the disk.
  // Paper: "up to 45% less than WNIC-only". Our duty-cycle calibration
  // yields a smaller but clearly significant saving; demand >= 15%.
  EXPECT_LT(ff.total_energy(), 0.85 * wnic.total_energy());
}

// Section 3.3.3 / Figure 3: FlexFetch beats BlueFS by a clear margin
// (paper: ~17%); Disk-only is expensive for the sparse email phase.
TEST(Integration, ThunderbirdMatchesFigure3) {
  const auto r = run_all(workloads::scenario_thunderbird(1), sim::SimConfig{});
  const Joules ff = r.at("flexfetch").total_energy();
  const Joules bluefs = r.at("bluefs").total_energy();
  const Joules disk = r.at("disk-only").total_energy();
  EXPECT_LT(ff, 0.92 * bluefs);
  EXPECT_GT(disk, 1.5 * ff);
}

// Section 3.3.3: "For WNIC with latency over 15 msec, WNIC-only consumes
// even more energy than Disk-only" — the crossover must exist within the
// sweep range.
TEST(Integration, ThunderbirdWnicCrossoverAppearsWithLatency) {
  const auto scenario = workloads::scenario_thunderbird(1);
  sim::SimConfig low;
  low.wnic = low.wnic.with_latency(units::ms(1));
  sim::SimConfig high;
  high.wnic = high.wnic.with_latency(units::ms(50));
  const auto at_low = run_all(scenario, low);
  const auto at_high = run_all(scenario, high);
  // At low latency the WNIC wins; at high latency it loses to the disk.
  EXPECT_LT(at_low.at("wnic-only").total_energy(),
            at_low.at("disk-only").total_energy());
  EXPECT_GT(at_high.at("wnic-only").total_energy(),
            at_high.at("disk-only").total_energy());
}

// Section 3.3.4 / Figure 4: with xmms pinning the disk up, adaptive
// FlexFetch rides the spun-up disk and substantially beats FlexFetch-static.
TEST(Integration, ForcedSpinupMatchesFigure4) {
  const auto r =
      run_all(workloads::scenario_forced_spinup(1), sim::SimConfig{}, true);
  const Joules ff = r.at("flexfetch").total_energy();
  const Joules ff_static = r.at("flexfetch-static").total_energy();
  const Joules disk = r.at("disk-only").total_energy();
  EXPECT_LT(ff, 0.85 * ff_static);  // The adaptation pays off.
  EXPECT_LE(ff, 1.05 * disk);       // Riding the disk ~= Disk-only.
}

// Section 3.3.4: at high WNIC latency both variants converge on the disk
// ("their curves merge eventually").
TEST(Integration, ForcedSpinupVariantsMergeAtHighLatency) {
  const auto scenario = workloads::scenario_forced_spinup(1);
  sim::SimConfig fast;  // 1 ms default.
  sim::SimConfig slow;
  slow.wnic = slow.wnic.with_latency(units::ms(100));
  const auto at_fast = run_all(scenario, fast, true);
  const auto at_slow = run_all(scenario, slow, true);
  const Joules gap_fast = at_fast.at("flexfetch-static").total_energy() -
                          at_fast.at("flexfetch").total_energy();
  const Joules gap_slow = at_slow.at("flexfetch-static").total_energy() -
                          at_slow.at("flexfetch").total_energy();
  // The curves converge: once latency makes the network clearly worse,
  // even the static variant's profile decisions land on the disk.
  EXPECT_LT(gap_slow, 0.25 * gap_fast);
  EXPECT_NEAR(at_slow.at("flexfetch").total_energy().value(),
              at_slow.at("flexfetch-static").total_energy().value(),
              (0.05 * at_slow.at("flexfetch-static").total_energy()).value());
}

// Section 3.3.5 / Figure 5: with a stale profile, adaptive FlexFetch
// corrects itself after one stage (much better than static, modestly worse
// than BlueFS).
TEST(Integration, StaleAcroreadMatchesFigure5) {
  const auto r = run_all(workloads::scenario_stale_acroread(1),
                         sim::SimConfig{}, true);
  const Joules ff = r.at("flexfetch").total_energy();
  const Joules ff_static = r.at("flexfetch-static").total_energy();
  const Joules bluefs = r.at("bluefs").total_energy();
  EXPECT_LT(ff, 0.75 * ff_static);  // Paper: ~36% less than static.
  EXPECT_GE(ff, bluefs);            // Paper: ~15% more than BlueFS.
  EXPECT_LT(ff, 1.35 * bluefs);     // ...but in the same league.
}

// Across every scenario — and across trace seeds, so the reproduction is
// not tuned to one lucky draw — FlexFetch must track the better fixed
// policy: the paper's headline claim.
TEST(Integration, FlexFetchTracksTheBestFixedPolicyEverywhere) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& scenario : workloads::all_scenarios(seed)) {
      const auto r = run_all(scenario, sim::SimConfig{});
      const Joules ff = r.at("flexfetch").total_energy();
      const Joules best = std::min(r.at("disk-only").total_energy(),
                                   r.at("wnic-only").total_energy());
      EXPECT_LT(ff, 1.15 * best) << scenario.name << " seed " << seed;
    }
  }
}

// WNIC-only must degrade with latency on request-heavy workloads — the
// mechanism behind every Figure (a) sweep.
TEST(Integration, WnicOnlyEnergyGrowsWithLatency) {
  const auto scenario = workloads::scenario_grep_make(1);
  Joules prev = Joules{0.0};
  for (const double ms : {0.0, 10.0, 30.0}) {
    sim::SimConfig config;
    config.wnic = config.wnic.with_latency(units::ms(ms));
    auto policy = policies::make_policy("wnic-only");
    sim::Simulator simulator(config, scenario.programs, *policy);
    const Joules e = simulator.run().total_energy();
    EXPECT_GT(e, prev);
    prev = e;
  }
}

// Oracle (perfect profile) must not lose badly to FlexFetch anywhere.
TEST(Integration, OracleIsCompetitiveWithFlexFetch) {
  for (const auto& scenario : workloads::all_scenarios(1)) {
    auto oracle = policies::make_policy("oracle", {}, &scenario.oracle_future);
    sim::Simulator so(sim::SimConfig{}, scenario.programs, *oracle);
    const Joules oracle_energy = so.run().total_energy();
    auto ff = policies::make_policy("flexfetch", scenario.profiles);
    sim::Simulator sf(sim::SimConfig{}, scenario.programs, *ff);
    const Joules ff_energy = sf.run().total_energy();
    EXPECT_LT(oracle_energy, 1.25 * ff_energy) << scenario.name;
  }
}

}  // namespace
}  // namespace flexfetch
