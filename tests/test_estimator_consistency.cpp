// Validates the paper's Section 2.2 premise end-to-end: the on-line
// estimators' (T, E) predictions for a profile must track what the full
// simulator actually measures when the same workload runs on that device.
// Exact agreement is impossible (the simulator adds readahead, cache and
// write-back effects the profile abstracts away), but the estimates must
// be well within decision-making accuracy.
#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

struct Shape {
  const char* name;
  int bursts;
  Bytes bytes_per_burst;
  Seconds gap;
};

class EstimatorConsistency : public ::testing::TestWithParam<Shape> {};

trace::Trace build_trace(const Shape& s) {
  trace::TraceBuilder b(s.name);
  b.process(60, 60);
  for (int i = 0; i < s.bursts; ++i) {
    // Distinct files so the buffer cache cannot absorb repeats.
    b.read_file(100 + static_cast<trace::Inode>(i), s.bytes_per_burst,
                128 * kKiB);
    b.think(s.gap);
  }
  return b.build();
}

TEST_P(EstimatorConsistency, DiskEstimateTracksDiskOnlyRun) {
  const trace::Trace t = build_trace(GetParam());
  const Profile profile = Profile::from_trace(t, Seconds{0.020});

  sim::SimConfig config;
  device::Disk disk(config.disk);
  os::FileLayout layout(config.disk.capacity, config.layout_seed);
  const Estimate est = SourceEstimator::estimate_disk(
      disk, profile.span(0, profile.size()), Seconds{0.0}, layout);

  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, t, policy);

  // Energy: the measured run additionally pays the WNIC's PSM floor and
  // the trailing rundown; compare against the disk meter only.
  EXPECT_NEAR(est.energy.value(), r.disk_energy().value(), (0.30 * r.disk_energy()).value())
      << GetParam().name;
  // Time: the whole-run span must agree closely (think-dominated).
  EXPECT_NEAR(est.time.value(), r.makespan.value(), (0.15 * r.makespan).value()) << GetParam().name;
}

TEST_P(EstimatorConsistency, NetworkEstimateTracksWnicOnlyRun) {
  const trace::Trace t = build_trace(GetParam());
  const Profile profile = Profile::from_trace(t, Seconds{0.020});

  sim::SimConfig config;
  device::Wnic wnic(config.wnic);
  const Estimate est = SourceEstimator::estimate_network(
      wnic, profile.span(0, profile.size()), Seconds{0.0});

  policies::WnicOnlyPolicy policy;
  const auto r = sim::simulate(config, t, policy);

  EXPECT_NEAR(est.energy.value(), r.wnic_energy().value(), (0.30 * r.wnic_energy()).value())
      << GetParam().name;
  EXPECT_NEAR(est.time.value(), r.makespan.value(), (0.15 * r.makespan).value()) << GetParam().name;
}

TEST_P(EstimatorConsistency, EstimatesRankDevicesLikeMeasurements) {
  // The decision only needs the *ordering* to be right: whenever the two
  // measured runs differ by more than 20 %, the estimates must agree on
  // which device is cheaper.
  const trace::Trace t = build_trace(GetParam());
  const Profile profile = Profile::from_trace(t, Seconds{0.020});

  sim::SimConfig config;
  device::Disk disk(config.disk);
  device::Wnic wnic(config.wnic);
  os::FileLayout layout(config.disk.capacity, config.layout_seed);
  const Estimate est_disk = SourceEstimator::estimate_disk(
      disk, profile.span(0, profile.size()), Seconds{0.0}, layout);
  const Estimate est_net = SourceEstimator::estimate_network(
      wnic, profile.span(0, profile.size()), Seconds{0.0});

  policies::DiskOnlyPolicy dp;
  policies::WnicOnlyPolicy wp;
  const Joules disk_measured = sim::simulate(config, t, dp).total_energy();
  const Joules net_measured = sim::simulate(config, t, wp).total_energy();

  if (disk_measured < 0.8 * net_measured) {
    EXPECT_LT(est_disk.energy, est_net.energy) << GetParam().name;
  } else if (net_measured < 0.8 * disk_measured) {
    EXPECT_LT(est_net.energy, est_disk.energy) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimatorConsistency,
    ::testing::Values(
        Shape{"bursty_large", 4, 16 * kMiB, Seconds{1.0}},
        Shape{"paced_medium", 20, 2 * kMiB, Seconds{30.0}},
        Shape{"sparse_small", 15, 128 * kKiB, Seconds{25.0}},
        Shape{"dense_small", 40, 256 * kKiB, Seconds{3.0}}),
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace flexfetch::core
