#include "os/buffer_cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

BufferCacheConfig small_config(std::size_t pages) {
  BufferCacheConfig c;
  c.capacity_pages = pages;
  return c;
}

TEST(BufferCache, MissThenHit) {
  BufferCache c(small_config(16));
  const PageId p{1, 0};
  EXPECT_FALSE(c.lookup(p, Seconds{0.0}));
  c.fill(p, Seconds{0.0});
  EXPECT_TRUE(c.lookup(p, Seconds{1.0}));
  EXPECT_EQ(c.stats().lookups, 2u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(BufferCache, ContainsDoesNotCountLookups) {
  BufferCache c(small_config(16));
  c.fill(PageId{1, 0}, Seconds{0.0});
  EXPECT_TRUE(c.contains(PageId{1, 0}));
  EXPECT_FALSE(c.contains(PageId{1, 1}));
  EXPECT_EQ(c.stats().lookups, 0u);
}

TEST(BufferCache, FillIsIdempotent) {
  BufferCache c(small_config(16));
  c.fill(PageId{1, 0}, Seconds{0.0});
  c.fill(PageId{1, 0}, Seconds{1.0});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.stats().insertions, 1u);
}

TEST(BufferCache, EvictsWhenFull) {
  BufferCache c(small_config(8));
  for (std::uint64_t i = 0; i < 12; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.stats().evictions, 4u);
}

TEST(BufferCache, FirstTouchGoesToA1inFifoEviction) {
  // With capacity 8 and kin 25% (=2), scanning many once-touched pages
  // evicts in FIFO order: a pure scan cannot pollute the hot set.
  BufferCache c(small_config(8));
  for (std::uint64_t i = 0; i < 8; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  // Pages 0..5 were pushed out of A1in as new ones arrived.
  c.fill(PageId{2, 100}, Seconds{1.0});
  EXPECT_FALSE(c.contains(PageId{1, 0}));
}

TEST(BufferCache, GhostHitPromotesToAm) {
  BufferCache c(small_config(8));
  // Fill enough to push page {1,0} through A1in and out into the ghost list.
  c.fill(PageId{1, 0}, Seconds{0.0});
  for (std::uint64_t i = 1; i < 12; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  ASSERT_FALSE(c.contains(PageId{1, 0}));
  EXPECT_FALSE(c.lookup(PageId{1, 0}, Seconds{1.0}));
  EXPECT_GE(c.stats().ghost_hits, 1u);
  // Re-admission of a ghost page goes to Am (the hot LRU).
  c.fill(PageId{1, 0}, Seconds{1.0});
  // Scanning new pages now must NOT evict the re-admitted page quickly:
  for (std::uint64_t i = 100; i < 104; ++i) c.fill(PageId{2, i}, Seconds{2.0});
  EXPECT_TRUE(c.contains(PageId{1, 0}));
}

TEST(BufferCache, HotPagesSurviveScans) {
  BufferCache c(small_config(32));
  const PageId hot{9, 0};
  // Make `hot` a proper Am resident: touch, evict to ghost, re-admit.
  c.fill(hot, Seconds{0.0});
  for (std::uint64_t i = 0; i < 40; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  c.fill(hot, Seconds{1.0});
  ASSERT_TRUE(c.contains(hot));
  // A long scan of one-shot pages must not evict the hot page.
  for (std::uint64_t i = 0; i < 200; ++i) {
    c.fill(PageId{2, i}, Seconds{2.0});
    c.lookup(hot, Seconds{2.0});  // Keep it recently used.
  }
  EXPECT_TRUE(c.contains(hot));
}

TEST(BufferCache, WriteMarksDirty) {
  BufferCache c(small_config(16));
  c.write(PageId{1, 0}, Seconds{5.0});
  EXPECT_EQ(c.dirty_count(), 1u);
  const auto dirty = c.dirty_pages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].page, (PageId{1, 0}));
  EXPECT_DOUBLE_EQ(dirty[0].dirtied_at.value(), 5.0);
}

TEST(BufferCache, RewriteKeepsOriginalDirtyTime) {
  BufferCache c(small_config(16));
  c.write(PageId{1, 0}, Seconds{5.0});
  c.write(PageId{1, 0}, Seconds{9.0});
  EXPECT_EQ(c.dirty_count(), 1u);
  EXPECT_DOUBLE_EQ(c.dirty_pages()[0].dirtied_at.value(), 5.0);
}

TEST(BufferCache, MarkCleanClearsDirty) {
  BufferCache c(small_config(16));
  c.write(PageId{1, 0}, Seconds{5.0});
  c.mark_clean(PageId{1, 0});
  EXPECT_EQ(c.dirty_count(), 0u);
  EXPECT_TRUE(c.contains(PageId{1, 0}));  // Still resident, just clean.
}

TEST(BufferCache, MarkCleanOnAbsentPageIsNoOp) {
  BufferCache c(small_config(16));
  EXPECT_NO_THROW(c.mark_clean(PageId{3, 3}));
}

TEST(BufferCache, EvictingDirtyPageReturnsItForFlush) {
  BufferCache c(small_config(8));
  c.write(PageId{1, 0}, Seconds{1.0});
  std::vector<DirtyPage> flushed;
  for (std::uint64_t i = 1; i < 16 && flushed.empty(); ++i) {
    flushed = c.fill(PageId{2, i}, Seconds{2.0});
  }
  ASSERT_FALSE(flushed.empty());
  EXPECT_EQ(flushed[0].page, (PageId{1, 0}));
  EXPECT_EQ(c.dirty_count(), 0u);
}

TEST(BufferCache, DirtyPagesSortedOldestFirst) {
  BufferCache c(small_config(16));
  c.write(PageId{1, 2}, Seconds{3.0});
  c.write(PageId{1, 0}, Seconds{1.0});
  c.write(PageId{1, 1}, Seconds{2.0});
  const auto dirty = c.dirty_pages();
  ASSERT_EQ(dirty.size(), 3u);
  EXPECT_DOUBLE_EQ(dirty[0].dirtied_at.value(), 1.0);
  EXPECT_DOUBLE_EQ(dirty[2].dirtied_at.value(), 3.0);
}

TEST(BufferCache, DirtyPagesOlderThanFilters) {
  BufferCache c(small_config(16));
  c.write(PageId{1, 0}, Seconds{0.0});
  c.write(PageId{1, 1}, Seconds{50.0});
  const auto old = c.dirty_pages_older_than(Seconds{60.0}, Seconds{30.0});
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(old[0].page, (PageId{1, 0}));
}

TEST(BufferCache, WritePromotesAmResidents) {
  BufferCache c(small_config(16));
  c.write(PageId{1, 0}, Seconds{0.0});
  EXPECT_TRUE(c.lookup(PageId{1, 0}, Seconds{1.0}));
}

TEST(BufferCache, ClearDropsEverything) {
  BufferCache c(small_config(16));
  c.fill(PageId{1, 0}, Seconds{0.0});
  c.write(PageId{1, 1}, Seconds{0.0});
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.dirty_count(), 0u);
  EXPECT_FALSE(c.contains(PageId{1, 0}));
}

TEST(BufferCache, HitRateComputation) {
  BufferCache c(small_config(16));
  c.fill(PageId{1, 0}, Seconds{0.0});
  c.lookup(PageId{1, 0}, Seconds{0.0});  // Hit.
  c.lookup(PageId{1, 1}, Seconds{0.0});  // Miss.
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
}

TEST(BufferCache, RejectsTinyCapacity) {
  EXPECT_THROW(BufferCache(small_config(2)), ConfigError);
}

TEST(BufferCache, RejectsBadFractions) {
  BufferCacheConfig c;
  c.kin_fraction = 0.0;
  EXPECT_THROW(BufferCache{c}, ConfigError);
  c = BufferCacheConfig{};
  c.kin_fraction = 1.5;
  EXPECT_THROW(BufferCache{c}, ConfigError);
}

// --- Edge semantics pinned before the slot-arena rewrite (kept verbatim
// --- afterwards; the arena must reproduce all of them bit-for-bit).

TEST(BufferCache, GhostReadmissionViaWriteGoesToAm) {
  BufferCache c(small_config(8));
  c.fill(PageId{1, 0}, Seconds{0.0});
  for (std::uint64_t i = 1; i < 12; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  ASSERT_FALSE(c.contains(PageId{1, 0}));
  // Re-admission through the write path must also land in Am.
  c.write(PageId{1, 0}, Seconds{1.0});
  for (std::uint64_t i = 100; i < 104; ++i) c.fill(PageId{2, i}, Seconds{2.0});
  EXPECT_TRUE(c.contains(PageId{1, 0}));
  EXPECT_EQ(c.dirty_count(), 1u);
}

TEST(BufferCache, KinKoutBoundaryRounding) {
  // capacity 5 with the default fractions: kin = floor(1.25) = 1,
  // kout = floor(2.5) = 2. Both floors are pinned here so the arena
  // rewrite cannot silently change the rounding.
  BufferCache c(small_config(5));
  for (std::uint64_t i = 0; i < 5; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  // Sixth insert: A1in (size 5) is over kin=1, so FIFO-evict page 0.
  c.fill(PageId{1, 5}, Seconds{0.0});
  EXPECT_FALSE(c.contains(PageId{1, 0}));
  // Evict two more; the ghost list holds only kout=2 ids, so the oldest
  // ghost (page 0) must have been dropped by now.
  c.fill(PageId{1, 6}, Seconds{0.0});
  c.fill(PageId{1, 7}, Seconds{0.0});
  const auto ghost_hits_before = c.stats().ghost_hits;
  EXPECT_FALSE(c.lookup(PageId{1, 0}, Seconds{1.0}));
  EXPECT_EQ(c.stats().ghost_hits, ghost_hits_before);  // Fell off A1out.
  EXPECT_FALSE(c.lookup(PageId{1, 2}, Seconds{1.0}));
  EXPECT_EQ(c.stats().ghost_hits, ghost_hits_before + 1);  // Still a ghost.
}

TEST(BufferCache, DirtyEvictionOrderFollowsA1inFifo) {
  BufferCache c(small_config(8));
  c.write(PageId{1, 0}, Seconds{1.0});
  c.write(PageId{1, 1}, Seconds{2.0});
  c.write(PageId{1, 2}, Seconds{3.0});
  // Fill until all three dirty pages have been evicted; evictions must
  // come back in A1in FIFO order (insertion order) with their dirty times.
  std::vector<DirtyPage> flushed;
  for (std::uint64_t i = 0; i < 32 && flushed.size() < 3; ++i) {
    const auto evicted = c.fill(PageId{2, i}, Seconds{10.0});
    flushed.insert(flushed.end(), evicted.begin(), evicted.end());
  }
  ASSERT_EQ(flushed.size(), 3u);
  EXPECT_EQ(flushed[0].page, (PageId{1, 0}));
  EXPECT_DOUBLE_EQ(flushed[0].dirtied_at.value(), 1.0);
  EXPECT_EQ(flushed[1].page, (PageId{1, 1}));
  EXPECT_EQ(flushed[2].page, (PageId{1, 2}));
  EXPECT_EQ(c.dirty_count(), 0u);
}

TEST(BufferCache, MarkCleanOnEvictedPageIsNoOp) {
  BufferCache c(small_config(8));
  c.write(PageId{1, 0}, Seconds{1.0});
  std::vector<DirtyPage> flushed;
  for (std::uint64_t i = 0; i < 32 && flushed.empty(); ++i) {
    flushed = c.fill(PageId{2, i}, Seconds{2.0});
  }
  ASSERT_FALSE(flushed.empty());
  // The page now lives (at most) in the ghost list; completing its
  // write-back must not resurrect it or touch the dirty list.
  EXPECT_NO_THROW(c.mark_clean(PageId{1, 0}));
  EXPECT_FALSE(c.contains(PageId{1, 0}));
  EXPECT_EQ(c.dirty_count(), 0u);
  const auto dirty_before = c.stats();
  (void)dirty_before;
}

TEST(BufferCache, A1inHitDoesNotChangeFifoOrder) {
  // 2Q: a hit in A1in leaves the page in place; it must still be the FIFO
  // eviction victim.
  BufferCache c(small_config(8));
  for (std::uint64_t i = 0; i < 8; ++i) c.fill(PageId{1, i}, Seconds{0.0});
  EXPECT_TRUE(c.lookup(PageId{1, 0}, Seconds{1.0}));  // Hit the FIFO head.
  c.fill(PageId{2, 0}, Seconds{2.0});                 // Forces one eviction.
  EXPECT_FALSE(c.contains(PageId{1, 0}));    // Still evicted first.
}

TEST(PageId, HashAndOrdering) {
  PageIdHash h;
  EXPECT_EQ(h(PageId{1, 2}), h(PageId{1, 2}));
  EXPECT_NE(h(PageId{1, 2}), h(PageId{2, 1}));
  EXPECT_LT((PageId{1, 2}), (PageId{1, 3}));
  EXPECT_LT((PageId{1, 9}), (PageId{2, 0}));
}

TEST(PageId, IndexHelpers) {
  EXPECT_EQ(page_index(Bytes{0}), 0u);
  EXPECT_EQ(page_index(Bytes{4095}), 0u);
  EXPECT_EQ(page_index(Bytes{4096}), 1u);
  EXPECT_EQ(page_end_index(Bytes{0}, Bytes{1}), 1u);
  EXPECT_EQ(page_end_index(Bytes{0}, Bytes{4096}), 1u);
  EXPECT_EQ(page_end_index(Bytes{0}, Bytes{4097}), 2u);
  EXPECT_EQ(page_end_index(Bytes{4000}, Bytes{200}), 2u);  // Straddles a boundary.
  EXPECT_EQ(page_end_index(Bytes{100}, Bytes{0}), 0u);     // Empty range.
}

}  // namespace
}  // namespace flexfetch::os
