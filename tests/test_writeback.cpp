#include "os/writeback.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

BufferCache make_cache() {
  BufferCacheConfig c;
  c.capacity_pages = 64;
  return BufferCache(c);
}

TEST(Writeback, NothingToFlushWhenClean) {
  const WritebackPolicy wb;
  BufferCache cache = make_cache();
  cache.fill(PageId{1, 0}, Seconds{0.0});
  EXPECT_TRUE(wb.select_flush(cache, Seconds{100.0}, true).empty());
  EXPECT_TRUE(wb.select_flush(cache, Seconds{100.0}, false).empty());
}

TEST(Writeback, ActiveDeviceFlushesEverythingEagerly) {
  // Laptop mode: "eager writing back dirty blocks to active disks".
  const WritebackPolicy wb;
  BufferCache cache = make_cache();
  cache.write(PageId{1, 0}, Seconds{0.0});
  cache.write(PageId{1, 1}, Seconds{99.9});  // Fresh page: still flushed eagerly.
  const auto flush = wb.select_flush(cache, Seconds{100.0}, /*device_active=*/true);
  EXPECT_EQ(flush.size(), 2u);
}

TEST(Writeback, SleepingDeviceDelaysYoungDirtyPages) {
  const WritebackPolicy wb;  // laptop_mode_expire = 600 s.
  BufferCache cache = make_cache();
  cache.write(PageId{1, 0}, Seconds{0.0});
  EXPECT_TRUE(wb.select_flush(cache, Seconds{300.0}, /*device_active=*/false).empty());
}

TEST(Writeback, SleepingDeviceFlushesExpiredPages) {
  const WritebackPolicy wb;
  BufferCache cache = make_cache();
  cache.write(PageId{1, 0}, Seconds{0.0});
  cache.write(PageId{1, 1}, Seconds{500.0});
  const auto flush = wb.select_flush(cache, Seconds{650.0}, /*device_active=*/false);
  ASSERT_EQ(flush.size(), 1u);  // Only the 650 s old page.
  EXPECT_EQ(flush[0].page, (PageId{1, 0}));
}

TEST(Writeback, MemoryPressureOverridesPowerSaving) {
  WritebackConfig config;
  config.dirty_pressure_pages = 4;
  const WritebackPolicy wb(config);
  BufferCache cache = make_cache();
  for (std::uint64_t i = 0; i < 4; ++i) cache.write(PageId{1, i}, Seconds{10.0});
  const auto flush = wb.select_flush(cache, Seconds{11.0}, /*device_active=*/false);
  EXPECT_EQ(flush.size(), 4u);
}

TEST(Writeback, NextWakeupUsesFlushInterval) {
  WritebackConfig config;
  config.flush_interval = Seconds{7.0};
  const WritebackPolicy wb(config);
  EXPECT_DOUBLE_EQ(wb.next_wakeup((Seconds{10.0})).value(), 17.0);
}

TEST(Writeback, ConfigValidation) {
  WritebackConfig c;
  c.dirty_expire = Seconds{0.0};
  EXPECT_THROW(WritebackPolicy{c}, ConfigError);
  c = WritebackConfig{};
  c.laptop_mode_expire = Seconds{1.0};  // Below dirty_expire.
  EXPECT_THROW(WritebackPolicy{c}, ConfigError);
  c = WritebackConfig{};
  c.flush_interval = Seconds{0.0};
  EXPECT_THROW(WritebackPolicy{c}, ConfigError);
}

}  // namespace
}  // namespace flexfetch::os
