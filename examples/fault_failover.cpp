// Fault failover: the mplayer streaming scenario with a WNIC disconnection
// injected mid-run. At the default 11 Mbps / 1 ms link FlexFetch streams
// from the network; when the access point drops out mid-stage the policy
// re-enters splice re-evaluation with the outage priced into the network
// estimate and fails over to the local disk instead of stalling through the
// blackout. The reaction is visible in the exported telemetry as fault.*
// events followed by a decision.splice on the policy track.
//
//   ./build/examples/fault_failover [seed]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/format.hpp"
#include "core/flexfetch.hpp"
#include "faults/schedule.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const auto scenario = workloads::scenario_mplayer(seed);
  const Seconds span = scenario.programs[0].trace.end_time();

  // One hand-written blackout: the link disappears a third of the way into
  // the playback and stays down for a minute.
  sim::SimConfig config;
  const Seconds outage_start = span / 3.0;
  const Seconds outage_end = outage_start + Seconds{60.0};
  config.faults.wnic.outages.push_back(
      faults::OutageWindow{.start = outage_start, .end = outage_end});
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;

  std::printf("mplayer playback: %s; WNIC outage [%s .. %s)\n\n",
              format_seconds(span).c_str(),
              format_seconds(outage_start).c_str(),
              format_seconds(outage_end).c_str());

  std::printf("%-18s %12s %12s %12s %10s\n", "policy", "energy", "disk",
              "wnic", "makespan");
  for (const char* name : {"flexfetch", "wnic-only"}) {
    auto policy = policies::make_policy(name, scenario.profiles,
                                        &scenario.oracle_future);
    sim::Simulator simulator(config, scenario.programs, *policy);
    const auto r = simulator.run();
    std::printf("%-18s %12s %12s %12s %10s\n", r.policy.c_str(),
                format_joules(r.total_energy()).c_str(),
                format_joules(r.disk_energy()).c_str(),
                format_joules(r.wnic_energy()).c_str(),
                format_seconds(r.makespan).c_str());
    if (std::strcmp(name, "flexfetch") != 0) continue;

    const auto* ff = dynamic_cast<const core::FlexFetchPolicy*>(policy.get());
    std::printf("  stage choices:");
    for (const auto c : ff->stage_choices()) {
      std::printf(" %c", c == device::DeviceKind::kDisk ? 'D' : 'n');
    }
    std::printf("   fault re-evaluations: %llu, switches: %llu\n",
                static_cast<unsigned long long>(
                    ff->stats().fault_reevaluations),
                static_cast<unsigned long long>(ff->stats().fault_switches));

    std::printf("  fault + decision trail around the outage:\n");
    for (const auto& ev : r.trace_events) {
      const bool fault = ev.category == telemetry::Category::kFault;
      const bool splice = std::strcmp(ev.name, "decision.splice") == 0;
      if (!fault && !splice) continue;
      if (ev.start < outage_start - Seconds{60.0} || ev.start > outage_end + Seconds{60.0}) {
        continue;
      }
      std::printf("    %9s  %-24s", format_seconds(ev.start).c_str(),
                  ev.name);
      for (std::uint8_t i = 0; i < ev.n_args; ++i) {
        const auto& a = ev.args[i];
        if (a.str != nullptr) {
          std::printf(" %s=%s", a.key, a.str);
        } else {
          std::printf(" %s=%.3g", a.key, a.num);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n(wnic-only has no disk to fall back to: it waits the "
              "outage out.)\n");
  return 0;
}
