// A crowded café: four laptops share one rate-adapted 802.11 AP and a
// two-slot remote server. Client 0 arrives with a nearly empty battery
// and runs FlexFetch; its three neighbours stream everything over the
// WNIC (wnic-only — no history, no restraint). The example runs the same
// morning twice — once with plain FIFO server admission and once with
// the battery-aware policy that reserves a service slot for low-battery
// clients — and prints what the shared medium did to each client and
// what the reservation bought the low-battery one.
//
//   ./build/examples/crowded_cafe [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "medium/multi_client.hpp"
#include "policies/factory.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

medium::MultiClientResult run_cafe(const std::string& admission,
                                   std::uint64_t seed) {
  using Builder = workloads::ScenarioBundle (*)(std::uint64_t);
  const Builder builders[] = {
      workloads::scenario_grep_make, workloads::scenario_mplayer,
      workloads::scenario_thunderbird, workloads::scenario_forced_spinup};

  medium::MultiClientConfig config;
  config.server.capacity = 2;
  config.server.reserved_slots = 1;
  config.server.low_battery_threshold = 0.30;
  config.server.admission = admission;

  std::vector<workloads::ScenarioBundle> bundles;
  std::vector<std::unique_ptr<sim::Policy>> policies;
  std::vector<medium::ClientSpec> specs;
  for (int i = 0; i < 4; ++i) {
    bundles.push_back(builders[i](seed + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 4; ++i) {
    const workloads::ScenarioBundle& b = bundles[static_cast<std::size_t>(i)];
    // The star of the show adapts; the neighbours hammer the AP.
    policies.push_back(policies::make_policy(i == 0 ? "flexfetch" : "wnic-only",
                                             b.profiles, &b.oracle_future,
                                             0.25));
    medium::ClientSpec spec;
    spec.name = b.name;
    spec.programs = b.programs;
    spec.policy = policies.back().get();
    // The cafe AP has rate-adapted down to a 5.5 Mb/s PHY (~3 Mb/s MAC
    // goodput) — the same crowded-cell preset bench_contention uses, and
    // the regime where contention genuinely moves FlexFetch's decisions.
    spec.config.wnic = spec.config.wnic.with_bandwidth_mbps(3.0);
    spec.link_quality = 1.0 - 0.05 * static_cast<double>(i);  // Seat draw.
    spec.battery.initial_fraction = i == 0 ? 0.15 : 0.80;
    specs.push_back(std::move(spec));
  }

  medium::MultiClientSim sim(config, std::move(specs));
  return sim.run();
}

void print_run(const char* label, const medium::MultiClientResult& r) {
  std::printf("--- %s admission ---\n", label);
  std::printf("%-14s %10s %10s %12s %12s %8s\n", "client", "energy[J]",
              "makespan", "net[MB]", "disk[MB]", "batt%");
  for (std::size_t i = 0; i < r.clients.size(); ++i) {
    const sim::SimResult& c = r.clients[i];
    std::printf("%-14s %10.1f %10.1f %12.1f %12.1f %8.1f\n",
                (std::string{i == 0 ? "*" : " "} + "client" +
                 std::to_string(i))
                    .c_str(),
                c.total_energy().value(), c.makespan.value(),
                c.net_bytes.as_double() / 1e6, c.disk_bytes.as_double() / 1e6,
                100.0 * r.battery_final[i]);
  }
  std::printf("medium: %llu transfers, %llu contended, mean share %.3f\n",
              static_cast<unsigned long long>(r.medium.transfers),
              static_cast<unsigned long long>(r.medium.contended_transfers),
              r.medium.mean_share());
  std::printf("server: %llu queue waits, %.2f s queued, max depth %llu, "
              "%llu reserved deferrals\n\n",
              static_cast<unsigned long long>(r.server.queue_waits),
              r.server.queue_wait.value(),
              static_cast<unsigned long long>(r.server.max_depth),
              static_cast<unsigned long long>(r.server.reserved_deferrals));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
    std::printf(
        "crowded cafe: one FlexFetch laptop (*) at 15%% battery, three "
        "wnic-only streamers,\none rate-adapted AP, a 2-slot server\n\n");
    const auto fifo = run_cafe("fifo", seed);
    print_run("fifo", fifo);
    const auto battery = run_cafe("battery", seed);
    print_run("battery-aware", battery);

    const double saved = fifo.clients[0].total_energy().value() -
                         battery.clients[0].total_energy().value();
    std::printf("battery-aware admission saved the low-battery client "
                "%.1f J (%.1f%%)\n",
                saved,
                100.0 * saved / fifo.clients[0].total_energy().value());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crowded_cafe: %s\n", e.what());
    return 1;
  }
}
