// Section 3.3.5 narrative, told by the telemetry subsystem: Thunderbird is
// run against a *stale* profile (recorded from a much lighter session), so
// the profile-driven stage choices keep losing the post-stage audit until
// FlexFetch stops trusting the profile and overrides it with measured
// estimates. The policy-track events show the audit-loss → profile-override
// sequence directly; the full trace is written as Chrome trace_event JSON
// for chrome://tracing or https://ui.perfetto.dev.
//
//   ./build/examples/trace_stage_audit [seed] [--trace-out FILE]

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <string_view>

#include "common/format.hpp"
#include "core/flexfetch.hpp"
#include "core/profile.hpp"
#include "sim/simulator.hpp"
#include "telemetry/exporters.hpp"
#include "workloads/generators.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [seed] [--trace-out FILE]\n", argv0);
  return 2;
}

void print_event(const telemetry::TraceEvent& ev) {
  std::printf("  t=%8.1fs  %-16s", ev.start.value(), ev.name);
  for (std::size_t i = 0; i < ev.n_args; ++i) {
    const telemetry::Arg& a = ev.args[i];
    if (a.str != nullptr) {
      std::printf("  %s=%s", a.key, a.str);
    } else {
      std::printf("  %s=%.6g", a.key, a.num);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::string trace_out = "trace_stage_audit.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
      seed = std::strtoull(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      return usage(argv[0]);
    }
  }

  // The stale profile: Thunderbird as recorded weeks ago — tiny mailboxes,
  // small reads. The current session (default parameters) searches 26 MB
  // mailboxes, so every profile-driven estimate is far too optimistic.
  workloads::ThunderbirdParams light;
  light.mailbox_bytes = 2 * kMiB;
  light.email_read_bytes = 16 * kKiB;
  light.search_chunk = 64 * kKiB;
  const trace::Trace prior =
      workloads::thunderbird_trace(light, seed, seed * 2);
  trace::Trace eval = workloads::thunderbird_trace(
      workloads::ThunderbirdParams{}, seed, seed * 2 + 1);

  const std::vector<core::Profile> profiles = {
      core::Profile::from_trace(prior, workloads::kProfileBurstThreshold)};
  std::vector<sim::ProgramSpec> programs;
  programs.push_back(
      sim::ProgramSpec{.trace = std::move(eval), .name = "thunderbird"});

  const trace::TraceStats eval_stats = programs[0].trace.stats();
  std::printf("stale profile: %zu bursts, %s (current run reads %s)\n",
              profiles[0].size(),
              format_bytes(profiles[0].total_bytes()).c_str(),
              format_bytes(eval_stats.bytes_read).c_str());

  sim::SimConfig config;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
  core::FlexFetchPolicy policy(core::FlexFetchConfig{}, profiles);
  sim::Simulator simulator(config, programs, policy);
  const sim::SimResult r = simulator.run();

  std::printf("\npolicy timeline (audit outcomes and overrides):\n");
  std::uint64_t losses = 0;
  std::uint64_t overrides = 0;
  for (const auto& ev : r.trace_events) {
    if (ev.track != telemetry::track::kPolicy) continue;
    const std::string_view name(ev.name);
    if (name == "stage.enter" || name == "audit.win" ||
        name == "audit.loss" || name == "profile.override") {
      print_event(ev);
      if (name == "audit.loss") ++losses;
      if (name == "profile.override") ++overrides;
    }
  }

  std::printf("\n%llu audit losses, %llu profile overrides "
              "(ff.audit_overrides=%.0f)\n",
              static_cast<unsigned long long>(losses),
              static_cast<unsigned long long>(overrides),
              r.metrics.value("ff.audit_overrides"));
  std::printf("energy %s, makespan %s\n",
              format_joules(r.total_energy()).c_str(),
              format_seconds(r.makespan).c_str());
  if (overrides == 0) {
    std::fprintf(stderr, "expected at least one profile override — the "
                         "profile was not stale enough\n");
    return 1;
  }

  std::ofstream os(trace_out);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
    return 1;
  }
  telemetry::write_chrome_trace(
      os, std::span<const telemetry::TraceEvent>(r.trace_events),
      r.trace_events_dropped, &r.metrics);
  std::printf("wrote Chrome trace to %s\n", trace_out.c_str());
  return 0;
}
