// Runs every Section 3.3 scenario under the full policy set at the default
// network conditions (11 Mbps, 1 ms) and prints an energy comparison table.
// The (scenario, policy) grid is fanned out by the parallel sweep engine.
//
//   ./build/examples/compare_policies [seed] [--jobs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/format.hpp"
#include "sim/sweep.hpp"
#include "workloads/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace flexfetch;
  std::uint64_t seed = 1;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  const std::vector<std::string> policy_names = {
      "flexfetch", "flexfetch-static", "bluefs", "disk-only", "wnic-only",
      "oracle"};

  const auto scenarios = workloads::all_scenarios(seed);
  std::vector<const workloads::ScenarioBundle*> refs;
  refs.reserve(scenarios.size());
  for (const auto& s : scenarios) refs.push_back(&s);

  const auto cells = sim::make_grid(
      refs, policy_names, {device::WnicParams::cisco_aironet350()});
  const auto results = sim::run_sweep(cells, {.jobs = jobs});

  std::size_t i = 0;
  for (const auto& scenario : scenarios) {
    std::printf("=== %s ===\n", scenario.name.c_str());
    std::printf("%-18s %12s %12s %12s %10s\n", "policy", "energy", "disk",
                "wnic", "makespan");
    for (std::size_t p = 0; p < policy_names.size(); ++p) {
      const sim::SimResult& r = results[i++];
      std::printf("%-18s %12s %12s %12s %10s\n", r.policy.c_str(),
                  format_joules(r.total_energy()).c_str(),
                  format_joules(r.disk_energy()).c_str(),
                  format_joules(r.wnic_energy()).c_str(),
                  format_seconds(r.makespan).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
