// Runs every Section 3.3 scenario under the full policy set at the default
// network conditions (11 Mbps, 1 ms) and prints an energy comparison table.
//
//   ./build/examples/compare_policies [seed]

#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace flexfetch;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  const std::vector<std::string> policy_names = {
      "flexfetch", "flexfetch-static", "bluefs", "disk-only", "wnic-only",
      "oracle"};

  for (const auto& scenario : workloads::all_scenarios(seed)) {
    std::printf("=== %s ===\n", scenario.name.c_str());
    std::printf("%-18s %12s %12s %12s %10s\n", "policy", "energy", "disk",
                "wnic", "makespan");
    for (const auto& name : policy_names) {
      auto policy = policies::make_policy(name, scenario.profiles,
                                          &scenario.oracle_future);
      sim::Simulator simulator(sim::SimConfig{}, scenario.programs, *policy);
      const sim::SimResult r = simulator.run();
      std::printf("%-18s %12s %12s %12s %10s\n", r.policy.c_str(),
                  format_joules(r.total_energy()).c_str(),
                  format_joules(r.disk_energy()).c_str(),
                  format_joules(r.wnic_energy()).c_str(),
                  format_seconds(r.makespan).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
