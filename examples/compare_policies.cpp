// Runs every Section 3.3 scenario under the full policy set at the default
// network conditions (11 Mbps, 1 ms) and prints an energy comparison table.
// The (scenario, policy) grid is fanned out by the parallel sweep engine.
//
//   ./build/examples/compare_policies [seed] [--jobs N] [--metrics]
//                                     [--trace-out FILE]
//
// --metrics appends a per-policy telemetry metrics summary (merged across
// scenarios); --trace-out writes a Chrome trace_event JSON of the first
// grid cell, loadable in chrome://tracing or https://ui.perfetto.dev.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>

#include "common/format.hpp"
#include "sim/sweep.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/scenarios.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [seed] [--jobs N] [--metrics] [--trace-out FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexfetch;
  std::uint64_t seed = 1;
  int jobs = 0;
  bool metrics = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
      seed = std::strtoull(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      return usage(argv[0]);
    }
  }

  const std::vector<std::string> policy_names = {
      "flexfetch", "flexfetch-static", "bluefs", "disk-only", "wnic-only",
      "oracle"};

  const auto scenarios = workloads::all_scenarios(seed);
  std::vector<const workloads::ScenarioBundle*> refs;
  refs.reserve(scenarios.size());
  for (const auto& s : scenarios) refs.push_back(&s);

  auto cells = sim::make_grid(refs, policy_names,
                              {device::WnicParams::cisco_aironet350()});
  if (metrics || !trace_out.empty()) {
    for (auto& cell : cells) {
      cell.config.telemetry.enabled = true;  // metrics-only by default
    }
    if (!trace_out.empty() && !cells.empty()) {
      cells[0].config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
    }
  }
  const auto results = sim::run_sweep(cells, {.jobs = jobs});

  std::size_t i = 0;
  for (const auto& scenario : scenarios) {
    std::printf("=== %s ===\n", scenario.name.c_str());
    std::printf("%-18s %12s %12s %12s %10s\n", "policy", "energy", "disk",
                "wnic", "makespan");
    for (std::size_t p = 0; p < policy_names.size(); ++p) {
      const sim::SimResult& r = results[i++];
      std::printf("%-18s %12s %12s %12s %10s\n", r.policy.c_str(),
                  format_joules(r.total_energy()).c_str(),
                  format_joules(r.disk_energy()).c_str(),
                  format_joules(r.wnic_energy()).c_str(),
                  format_seconds(r.makespan).c_str());
    }
    std::printf("\n");
  }

  if (metrics) {
    std::printf("telemetry metrics, merged per policy across %zu scenarios\n",
                scenarios.size());
    for (const auto& p : policy_names) {
      telemetry::MetricsRegistry merged;
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cells[c].policy == p) merged.merge(results[c].metrics);
      }
      std::printf("[%s]\n", p.c_str());
      for (const auto& [name, metric] : merged.items()) {
        std::printf("  %-32s %.6g\n", name.c_str(), metric.value);
      }
    }
    std::printf("\n");
  }

  if (!trace_out.empty() && !results.empty()) {
    std::ofstream os(trace_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    telemetry::write_chrome_trace(
        os, std::span<const telemetry::TraceEvent>(results[0].trace_events),
        results[0].trace_events_dropped, &results[0].metrics);
    std::printf("wrote Chrome trace of cell 0 (%s / %s) to %s\n",
                cells[0].scenario->name.c_str(), cells[0].policy.c_str(),
                trace_out.c_str());
  }
  return 0;
}
