// Media streaming deep-dive (the Section 3.3.2 scenario): runs mplayer
// under every policy at each 802.11b rate and prints full per-device
// energy breakdowns, showing *why* FlexFetch changes its source — the
// disk's duty-cycle cost against the WNIC's transfer+mode-switch cost.
//
//   ./build/examples/media_player [seed]

#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "core/flexfetch.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

void show_breakdown(const sim::SimResult& r) {
  std::printf("    disk: %s over %llu requests, %llu spin-ups, %llu spin-downs\n",
              format_joules(r.disk_energy()).c_str(),
              static_cast<unsigned long long>(r.disk_requests),
              static_cast<unsigned long long>(r.disk_counters.spin_ups),
              static_cast<unsigned long long>(r.disk_counters.spin_downs));
  std::printf("%s", r.disk_meter.report().c_str());
  std::printf("    wnic: %s over %llu requests, %llu wakes, %llu psm transfers\n",
              format_joules(r.wnic_energy()).c_str(),
              static_cast<unsigned long long>(r.net_requests),
              static_cast<unsigned long long>(r.wnic_counters.wakes),
              static_cast<unsigned long long>(r.wnic_counters.psm_transfers));
  std::printf("%s", r.wnic_meter.report().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const auto scenario = workloads::scenario_mplayer(seed);

  const auto stats = scenario.programs[0].trace.stats();
  std::printf("mplayer trace: %zu calls over %s, %s read from %zu files\n\n",
              stats.records, format_seconds(stats.duration).c_str(),
              format_bytes(stats.bytes_read).c_str(), stats.distinct_files);

  for (const double mbps : device::WnicParams::k80211bRatesMbps) {
    std::printf("=== link rate %.1f Mbps ===\n", mbps);
    sim::SimConfig config;
    config.wnic = config.wnic.with_bandwidth_mbps(mbps);

    for (const char* name : {"flexfetch", "disk-only", "wnic-only"}) {
      auto policy = policies::make_policy(name, scenario.profiles,
                                          &scenario.oracle_future);
      sim::Simulator simulator(config, scenario.programs, *policy);
      const auto r = simulator.run();
      std::printf("  %-10s %10s  (makespan %s)\n", r.policy.c_str(),
                  format_joules(r.total_energy()).c_str(),
                  format_seconds(r.makespan).c_str());
      if (std::string(name) == "flexfetch") {
        auto* ff = dynamic_cast<core::FlexFetchPolicy*>(policy.get());
        std::size_t to_disk = 0;
        for (const auto c : ff->stage_choices()) {
          if (c == device::DeviceKind::kDisk) ++to_disk;
        }
        std::printf("    stages: %zu total, %zu on disk, %zu on network\n",
                    ff->stage_choices().size(), to_disk,
                    ff->stage_choices().size() - to_disk);
        show_breakdown(r);
      }
    }
    std::printf("\n");
  }
  return 0;
}
