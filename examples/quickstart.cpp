// Quickstart: the FlexFetch API in one file.
//
// 1. Generate a synthetic application trace (stand-in for an strace log).
// 2. Record a profile from a prior run of the same program.
// 3. Simulate the run under the four policies of the paper and compare
//    energy consumption.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "flexfetch.hpp"  // The umbrella header: the whole public API.

int main() {
  using namespace flexfetch;

  // A scenario bundles the evaluation run, the prior-run profiles FlexFetch
  // consults, and the merged future trace for the Oracle upper bound.
  const workloads::ScenarioBundle scenario = workloads::scenario_mplayer();

  std::printf("scenario: %s\n", scenario.name.c_str());
  for (const auto& prog : scenario.programs) {
    const auto s = prog.trace.stats();
    std::printf("  program %-12s %6zu calls  %4zu files  %9s read  %8s span\n",
                prog.name.c_str(), s.records, s.distinct_files,
                format_bytes(s.bytes_read).c_str(),
                format_seconds(s.duration).c_str());
  }

  // Device models default to the paper's hardware: Hitachi DK23DA disk and
  // Cisco Aironet 350 WNIC at 11 Mbps / 1 ms.
  sim::SimConfig config;

  std::printf("\n%-18s %12s %12s %12s %10s\n", "policy", "energy", "disk",
              "wnic", "makespan");
  for (const auto& name :
       {"flexfetch", "bluefs", "disk-only", "wnic-only", "oracle"}) {
    auto policy = policies::make_policy(name, scenario.profiles,
                                        &scenario.oracle_future);
    sim::Simulator simulator(config, scenario.programs, *policy);
    const sim::SimResult r = simulator.run();
    std::printf("%-18s %12s %12s %12s %10s\n", r.policy.c_str(),
                format_joules(r.total_energy()).c_str(),
                format_joules(r.disk_energy()).c_str(),
                format_joules(r.wnic_energy()).c_str(),
                format_seconds(r.makespan).c_str());
  }
  return 0;
}
