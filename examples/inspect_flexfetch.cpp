// Inspects FlexFetch's internals on one scenario: the recorded profile's
// burst/stage structure, the per-stage device choices, and how often each
// adaptation mechanism fired.
//
//   ./build/examples/inspect_flexfetch [scenario] [seed]
//
// scenario: grep+make | mplayer | thunderbird | forced-spinup | acroread

#include <cstdio>
#include <cstring>
#include <string>

#include "common/format.hpp"
#include "core/flexfetch.hpp"
#include "core/stage.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

workloads::ScenarioBundle pick_scenario(const std::string& name,
                                        std::uint64_t seed) {
  if (name == "grep+make") return workloads::scenario_grep_make(seed);
  if (name == "mplayer") return workloads::scenario_mplayer(seed);
  if (name == "thunderbird") return workloads::scenario_thunderbird(seed);
  if (name == "forced-spinup") return workloads::scenario_forced_spinup(seed);
  if (name == "acroread") return workloads::scenario_stale_acroread(seed);
  std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
  std::exit(1);
}

void run_variant(const char* label, core::FlexFetchConfig config,
                 const workloads::ScenarioBundle& scenario) {
  core::FlexFetchPolicy policy(config, scenario.profiles);
  sim::Simulator simulator(sim::SimConfig{}, scenario.programs, policy);
  const sim::SimResult r = simulator.run();

  std::printf("\n-- %s --\n", label);
  std::printf("energy %s (disk %s, wnic %s), makespan %s\n",
              format_joules(r.total_energy()).c_str(),
              format_joules(r.disk_energy()).c_str(),
              format_joules(r.wnic_energy()).c_str(),
              format_seconds(r.makespan).c_str());
  std::printf("stage choices:");
  for (const auto kind : policy.stage_choices()) {
    std::printf(" %s", device::to_string(kind));
  }
  std::printf("\ndecision log:\n");
  for (const auto& d : policy.decision_log()) {
    std::printf("  t=%8.1fs %-10s stage=%2zu bursts[%3zu,+%3zu) "
                "disk(T=%7.2fs E=%8.2fJ) net(T=%7.2fs E=%8.2fJ) -> %s\n",
                d.time.value(),
                d.origin == core::DecisionRecord::Origin::kStageEntry
                    ? "stage"
                    : "splice",
                d.stage, d.first_burst, d.burst_count, d.disk.time.value(),
                d.disk.energy.value(), d.network.time.value(), d.network.energy.value(),
                device::to_string(d.decision));
  }
  const auto& st = policy.stats();
  std::printf("\nstages=%llu splice-reevals=%llu splice-switches=%llu "
              "audit-overrides=%llu free-rides=%llu cache-filtered=%llu\n",
              static_cast<unsigned long long>(st.stages_entered),
              static_cast<unsigned long long>(st.splice_reevaluations),
              static_cast<unsigned long long>(st.splice_switches),
              static_cast<unsigned long long>(st.audit_overrides),
              static_cast<unsigned long long>(st.free_rider_redirects),
              static_cast<unsigned long long>(st.cache_filtered_requests));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "thunderbird";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const auto scenario = pick_scenario(name, seed);

  // Profile structure.
  const core::Profile merged =
      core::Profile::merge(scenario.profiles, scenario.name);
  std::printf("profile '%s': %zu bursts, %s, span %s\n", merged.program().c_str(),
              merged.size(), format_bytes(merged.total_bytes()).c_str(),
              format_seconds(merged.span_seconds()).c_str());
  const auto stages = core::segment_stages(merged, Seconds{40.0});
  std::printf("%zu evaluation stages:\n", stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::printf("  stage %2zu: bursts [%4zu, %4zu)  start %9s  len %8s  %10s\n",
                i, stages[i].first_burst, stages[i].end_burst(),
                format_seconds(stages[i].start).c_str(),
                format_seconds(stages[i].length).c_str(),
                format_bytes(stages[i].bytes).c_str());
  }

  run_variant("FlexFetch (adaptive)", core::FlexFetchConfig{}, scenario);
  run_variant("FlexFetch-static", core::FlexFetchConfig::static_variant(),
              scenario);
  return 0;
}
