// Hoard planner: feeds application traces into the automated-hoarding
// substrate (Kuenning & Popek style, the replication system the paper's
// Section 1 relies on) and shows how much disk budget captures the working
// set with what confidence.
//
//   ./build/examples/hoard_planner [seed]

#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "hoard/hoard_set.hpp"
#include "workloads/generators.hpp"

using namespace flexfetch;

namespace {

void plan(const char* label, const trace::Trace& t) {
  hoard::HoardSet hs;
  hs.record_trace(t);
  const Seconds now = t.end_time();
  const auto stats = t.stats();

  std::printf("=== %s ===\n", label);
  std::printf("  %zu files, footprint %s, %llu accesses, %llu co-access links\n",
              hs.size(), format_bytes(stats.footprint).c_str(),
              static_cast<unsigned long long>(hs.stats().accesses),
              static_cast<unsigned long long>(hs.stats().co_access_links));

  std::printf("  %-14s %10s %12s\n", "budget", "files", "confidence");
  for (const double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto budget =
        Bytes{static_cast<std::uint64_t>(frac * stats.footprint.as_double())} +
        kPageSize;
    const auto chosen = hs.select(budget, now);
    std::printf("  %-14s %10zu %11.1f%%\n", format_bytes(budget).c_str(),
                chosen.size(), hs.hit_confidence(budget, now) * 100.0);
  }

  const auto top = hs.ranked(now);
  std::printf("  hottest files:");
  for (std::size_t i = 0; i < std::min<std::size_t>(top.size(), 5); ++i) {
    std::printf(" #%llu(%.1f)", static_cast<unsigned long long>(top[i].inode),
                top[i].priority);
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  plan("make (kernel build)", workloads::make_trace(workloads::MakeParams{},
                                                    seed, seed));
  plan("thunderbird", workloads::thunderbird_trace(
                          workloads::ThunderbirdParams{}, seed, seed));
  plan("grep", workloads::grep_trace(workloads::GrepParams{}, seed, seed));
  return 0;
}
