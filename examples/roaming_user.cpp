// Roaming user: watches a movie while walking through a building — the
// 802.11b link rate follows the signal (11 -> 2 -> 11 -> 1 Mbps). The
// paper motivates adaptivity with exactly this: "wireless network
// bandwidth may be changing with the variation of reception strength when
// user changes the location of his computer" (Section 1.1).
//
//   ./build/examples/roaming_user [seed]

#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "core/flexfetch.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const auto scenario = workloads::scenario_mplayer(seed);
  const Seconds span = scenario.programs[0].trace.end_time();

  // Walk: strong signal at the desk, weak in the stairwell, strong in the
  // lounge, nearly dead in the garden.
  sim::SimConfig config;
  config.wnic.bandwidth_schedule = {
      {span * 0.25, units::mbps(2.0)},
      {span * 0.50, units::mbps(11.0)},
      {span * 0.75, units::mbps(1.0)},
  };

  std::printf("roaming schedule over %s of playback:\n",
              format_seconds(span).c_str());
  std::printf("  [%8s .. %8s) 11.0 Mbps (desk)\n", "0 s",
              format_seconds(span * 0.25).c_str());
  std::printf("  [%8s .. %8s)  2.0 Mbps (stairwell)\n",
              format_seconds(span * 0.25).c_str(),
              format_seconds(span * 0.50).c_str());
  std::printf("  [%8s .. %8s) 11.0 Mbps (lounge)\n",
              format_seconds(span * 0.50).c_str(),
              format_seconds(span * 0.75).c_str());
  std::printf("  [%8s ..      end)  1.0 Mbps (garden)\n\n",
              format_seconds(span * 0.75).c_str());

  std::printf("%-18s %12s %12s %12s %10s\n", "policy", "energy", "disk",
              "wnic", "makespan");
  for (const char* name : {"flexfetch", "bluefs", "disk-only", "wnic-only"}) {
    auto policy = policies::make_policy(name, scenario.profiles,
                                        &scenario.oracle_future);
    sim::Simulator simulator(config, scenario.programs, *policy);
    const auto r = simulator.run();
    std::printf("%-18s %12s %12s %12s %10s\n", r.policy.c_str(),
                format_joules(r.total_energy()).c_str(),
                format_joules(r.disk_energy()).c_str(),
                format_joules(r.wnic_energy()).c_str(),
                format_seconds(r.makespan).c_str());
    if (std::string(name) == "flexfetch") {
      auto* ff = dynamic_cast<core::FlexFetchPolicy*>(policy.get());
      std::printf("  stage choices:");
      for (const auto c : ff->stage_choices()) {
        std::printf(" %c", c == device::DeviceKind::kDisk ? 'D' : 'n');
      }
      std::printf("\n  (D = disk, n = network; watch the source follow the"
                  " signal)\n");
    }
  }
  return 0;
}
