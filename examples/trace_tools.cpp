// Trace toolbox — the command-line counterpart of the paper's modified
// strace collection pipeline (Section 3.2).
//
//   trace_tools generate <app> <out.trace> [structure_seed] [run_seed]
//       Synthesizes one of the Table 3 application traces to a file.
//       apps: grep | make | xmms | mplayer | thunderbird | acroread
//   trace_tools import <strace.log> <out.trace>
//       Converts `strace -ttt -T` output into the native trace format.
//   trace_tools inspect <in.trace>
//       Prints Table 3-style statistics and the I/O burst structure.
//   trace_tools profile <in.trace> <out.profile>
//       Records a FlexFetch profile (bursts + think times) from a trace.
//
//   ./build/examples/trace_tools generate grep /tmp/grep.trace
//   ./build/examples/trace_tools inspect /tmp/grep.trace

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/format.hpp"
#include "core/profile.hpp"
#include "trace/strace_import.hpp"
#include "trace/trace_io.hpp"
#include "workloads/generators.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tools generate <app> <out.trace> [sseed] [rseed]\n"
               "  trace_tools import <strace.log> <out.trace>\n"
               "  trace_tools inspect <in.trace>\n"
               "  trace_tools profile <in.trace> <out.profile>\n");
  return 2;
}

trace::Trace generate(const std::string& app, std::uint64_t s, std::uint64_t r) {
  if (app == "grep") return workloads::grep_trace(workloads::GrepParams{}, s, r);
  if (app == "make") return workloads::make_trace(workloads::MakeParams{}, s, r);
  if (app == "xmms") return workloads::xmms_trace(workloads::XmmsParams{}, s, r);
  if (app == "mplayer") {
    return workloads::mplayer_trace(workloads::MplayerParams{}, s, r);
  }
  if (app == "thunderbird") {
    return workloads::thunderbird_trace(workloads::ThunderbirdParams{}, s, r);
  }
  if (app == "acroread") {
    return workloads::acroread_trace(workloads::AcroreadParams{}, s, r);
  }
  throw ConfigError("unknown app '" + app + "'");
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::uint64_t sseed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  const std::uint64_t rseed =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  const trace::Trace t = generate(argv[2], sseed, rseed);
  trace::save_trace(argv[3], t);
  const auto s = t.stats();
  std::printf("wrote %s: %zu records, %zu files, %s\n", argv[3], s.records,
              s.distinct_files, format_bytes(s.footprint).c_str());
  return 0;
}

int cmd_import(int argc, char** argv) {
  if (argc < 4) return usage();
  const trace::Trace t = trace::import_strace_file(argv[2]);
  trace::save_trace(argv[3], t);
  std::printf("imported %zu records from %s\n", t.size(), argv[2]);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  const trace::Trace t = trace::load_trace(argv[2]);
  const auto s = t.stats();
  std::printf("trace '%s'\n", t.name().c_str());
  std::printf("  records:   %zu (%zu reads, %zu writes)\n", s.records,
              s.reads, s.writes);
  std::printf("  files:     %zu, footprint %s\n", s.distinct_files,
              format_bytes(s.footprint).c_str());
  std::printf("  volume:    %s read, %s written\n",
              format_bytes(s.bytes_read).c_str(),
              format_bytes(s.bytes_written).c_str());
  std::printf("  span:      %s\n", format_seconds(s.duration).c_str());

  const auto bursts =
      core::extract_bursts(t, workloads::kProfileBurstThreshold);
  Bytes burst_bytes = Bytes{0};
  Seconds longest_think = Seconds{0.0};
  for (const auto& b : bursts) {
    burst_bytes += b.total_bytes();
    longest_think = std::max(longest_think, b.think_before);
  }
  std::printf("  bursts:    %zu (threshold %s), longest think %s\n",
              bursts.size(),
              format_seconds(workloads::kProfileBurstThreshold).c_str(),
              format_seconds(longest_think).c_str());
  if (!bursts.empty()) {
    std::printf("  avg burst: %s across %.1f requests\n",
                format_bytes(burst_bytes / bursts.size()).c_str(),
                static_cast<double>(s.reads + s.writes) /
                    static_cast<double>(bursts.size()));
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 4) return usage();
  const trace::Trace t = trace::load_trace(argv[2]);
  const core::Profile p =
      core::Profile::from_trace(t, workloads::kProfileBurstThreshold);
  std::ofstream os(argv[3]);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  p.write(os);
  std::printf("recorded profile '%s': %zu bursts, %s over %s\n",
              p.program().c_str(), p.size(),
              format_bytes(p.total_bytes()).c_str(),
              format_seconds(p.span_seconds()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "import") return cmd_import(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "profile") return cmd_profile(argc, argv);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
