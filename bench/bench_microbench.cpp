// Performance microbenchmarks of the simulation substrates: how fast do
// the building blocks run? (Simulation throughput is what makes the
// parameter sweeps in the figure benches cheap.)

#include <benchmark/benchmark.h>

#include "core/burst.hpp"
#include "core/estimator.hpp"
#include "os/buffer_cache.hpp"
#include "os/io_scheduler.hpp"
#include "sim/simulator.hpp"
#include "policies/fixed.hpp"
#include "trace/builder.hpp"
#include "workloads/generators.hpp"

using namespace flexfetch;

namespace {

void BM_BufferCacheLookupHit(benchmark::State& state) {
  os::BufferCache cache;
  for (std::uint64_t i = 0; i < 1000; ++i) cache.fill(os::PageId{1, i}, 0.0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(os::PageId{1, i % 1000}, 0.0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheLookupHit);

void BM_BufferCacheFillEvict(benchmark::State& state) {
  os::BufferCacheConfig config;
  config.capacity_pages = 1024;
  os::BufferCache cache(config);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(os::PageId{1, i++}, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheFillEvict);

void BM_CScanSubmitDispatch(benchmark::State& state) {
  os::CScanScheduler sched;
  std::uint64_t lba = 0;
  for (auto _ : state) {
    sched.submit(device::DeviceRequest{.lba = (lba * 7919) % (1 << 30),
                                       .size = 4096});
    ++lba;
    if (sched.pending() > 64) sched.dispatch();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CScanSubmitDispatch);

void BM_BurstExtraction(benchmark::State& state) {
  const auto trace = workloads::make_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_bursts(trace, 0.020).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_BurstExtraction)->Unit(benchmark::kMillisecond);

void BM_StageEstimate(benchmark::State& state) {
  const auto trace = workloads::mplayer_trace();
  const auto profile = core::Profile::from_trace(trace, 0.020);
  device::Disk disk;
  os::FileLayout layout(30 * kGiB);
  const auto span = profile.span(0, std::min<std::size_t>(profile.size(), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SourceEstimator::estimate_disk(disk, span, 0.0, layout).energy);
  }
}
BENCHMARK(BM_StageEstimate);

void BM_FullSimulationDiskOnly(benchmark::State& state) {
  const auto trace = workloads::grep_trace();
  for (auto _ : state) {
    policies::DiskOnlyPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(sim::SimConfig{}, trace, policy).total_energy());
  }
  // Report simulated-seconds per wall-second via the trace span.
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullSimulationDiskOnly)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
