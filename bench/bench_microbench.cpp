// Performance microbenchmarks of the simulation substrates: how fast do
// the building blocks run? (Simulation throughput is what makes the
// parameter sweeps in the figure benches cheap.)
//
// Also measures the telemetry overhead contract (near-zero when disabled):
// the same full simulation is timed with telemetry off and on, both results
// are checked for equality, and the pair is recorded in BENCH_telemetry.json
// (path overridable with --telemetry-out FILE).
//
// And records the arena hot-path speedups (2Q cache, C-SCAN, full-sim cell
// throughput) against the pre-rewrite numbers in BENCH_hotpath.json (path
// overridable with --hotpath-out FILE).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/burst.hpp"
#include "core/estimator.hpp"
#include "harness.hpp"
#include "os/buffer_cache.hpp"
#include "os/io_scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "policies/fixed.hpp"
#include "trace/builder.hpp"
#include "workloads/generators.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

void BM_BufferCacheLookupHit(benchmark::State& state) {
  os::BufferCache cache;
  for (std::uint64_t i = 0; i < 1000; ++i) cache.fill(os::PageId{1, i}, Seconds{0.0});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(os::PageId{1, i % 1000}, Seconds{0.0}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheLookupHit);

void BM_BufferCacheFillEvict(benchmark::State& state) {
  os::BufferCacheConfig config;
  config.capacity_pages = 1024;
  os::BufferCache cache(config);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(os::PageId{1, i++}, Seconds{0.0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheFillEvict);

void BM_CScanSubmitDispatch(benchmark::State& state) {
  os::CScanScheduler sched;
  std::uint64_t lba = 0;
  for (auto _ : state) {
    sched.submit(device::DeviceRequest{.lba = Bytes{(lba * 7919) % (1 << 30)},
                                       .size = Bytes{4096}});
    ++lba;
    if (sched.pending() > 64) sched.dispatch();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CScanSubmitDispatch);

// Mixed merge workload: 3 of 4 submissions sequentially extend the previous
// request (the merge fast path), 1 of 4 jumps to a new LBA.
void BM_CScanMixedMerge(benchmark::State& state) {
  os::CScanScheduler sched;
  std::uint64_t i = 0;
  Bytes lba = Bytes{0};
  for (auto _ : state) {
    if (i % 4 == 0) lba = Bytes{(i * 7919) % (1ull << 30)};
    sched.submit(device::DeviceRequest{.lba = lba, .size = Bytes{4096}});
    lba += Bytes{4096};
    ++i;
    if (sched.pending() > 64) sched.dispatch();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CScanMixedMerge);

// One full sweep cell (scenario x policy x WNIC) — the unit the sweep
// engine fans out; cell wall-clock is what bounds the figure benches.
void BM_FullSimCellThroughput(benchmark::State& state) {
  static const workloads::ScenarioBundle scenario =
      workloads::scenario_grep_make(1);
  sim::SweepCell cell;
  cell.scenario = &scenario;
  cell.policy = "flexfetch";
  cell.wnic = device::WnicParams::cisco_aironet350();
  std::uint64_t syscalls = 0;
  for (auto _ : state) {
    syscalls = sim::run_cell(cell).syscalls;
  }
  state.SetItemsProcessed(static_cast<int64_t>(syscalls) * state.iterations());
}
BENCHMARK(BM_FullSimCellThroughput)->Unit(benchmark::kMillisecond);

void BM_BurstExtraction(benchmark::State& state) {
  const auto trace = workloads::make_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_bursts(trace, Seconds{0.020}).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_BurstExtraction)->Unit(benchmark::kMillisecond);

void BM_StageEstimate(benchmark::State& state) {
  const auto trace = workloads::mplayer_trace();
  const auto profile = core::Profile::from_trace(trace, Seconds{0.020});
  device::Disk disk;
  os::FileLayout layout(30 * kGiB);
  const auto span = profile.span(0, std::min<std::size_t>(profile.size(), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SourceEstimator::estimate_disk(disk, span, Seconds{0.0}, layout).energy);
  }
}
BENCHMARK(BM_StageEstimate);

void BM_FullSimulationDiskOnly(benchmark::State& state) {
  const auto trace = workloads::grep_trace();
  for (auto _ : state) {
    policies::DiskOnlyPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(sim::SimConfig{}, trace, policy).total_energy());
  }
  // Report simulated-seconds per wall-second via the trace span.
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullSimulationDiskOnly)->Unit(benchmark::kMillisecond);

void BM_FullSimulationTelemetryOn(benchmark::State& state) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;  // metrics-only: the production default
  for (auto _ : state) {
    policies::DiskOnlyPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(config, trace, policy).total_energy());
  }
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullSimulationTelemetryOn)->Unit(benchmark::kMillisecond);

void BM_FullSimulationRingCapture(benchmark::State& state) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
  for (auto _ : state) {
    policies::DiskOnlyPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(config, trace, policy).total_energy());
  }
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullSimulationRingCapture)->Unit(benchmark::kMillisecond);

/// Min-of-K wall-clock of one full grep simulation under `config`.
double min_sim_millis(const sim::SimConfig& config, const trace::Trace& trace,
                      sim::SimResult* out) {
  constexpr int kRuns = 9;
  double best = 1e18;
  for (int i = 0; i < kRuns; ++i) {
    policies::DiskOnlyPolicy policy;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = sim::simulate(config, trace, policy);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, ms);
    if (out != nullptr) *out = std::move(result);
  }
  return best;
}

/// The enforced overhead budget for metrics-on telemetry, in percent of
/// the telemetry-off wall-clock. CI runs this as a failing gate.
constexpr double kMetricsOverheadBudgetPct = 5.0;

/// Times telemetry off vs metrics-on (the production default) vs full
/// ring capture, asserts identical simulation outcomes, records all three
/// in a JSON file diffable across PRs, and fails when metrics-on overhead
/// blows the budget.
int record_telemetry_overhead(const std::string& out_path) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig off;
  sim::SimConfig metrics_on;
  metrics_on.telemetry.enabled = true;  // ring_capacity 0: metrics-only
  sim::SimConfig ring_on;
  ring_on.telemetry.enabled = true;
  ring_on.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;

  sim::SimResult r_off, r_metrics, r_ring;
  const double off_ms = min_sim_millis(off, trace, &r_off);
  const double metrics_ms = min_sim_millis(metrics_on, trace, &r_metrics);
  const double ring_ms = min_sim_millis(ring_on, trace, &r_ring);

  const auto identical = [&](const sim::SimResult& r) {
    return r_off.total_energy() == r.total_energy() &&
           r_off.makespan == r.makespan && r_off.io_time == r.io_time &&
           r_off.syscalls == r.syscalls &&
           r_off.disk_requests == r.disk_requests &&
           r_off.net_requests == r.net_requests;
  };
  if (!identical(r_metrics) || !identical(r_ring)) {
    std::fprintf(stderr,
                 "TELEMETRY PERTURBATION: enabling telemetry changed the "
                 "simulation result\n");
    return 1;
  }

  const auto pct = [off_ms](double ms) {
    return off_ms > 0.0 ? (ms / off_ms - 1.0) * 100.0 : 0.0;
  };
  const double overhead_pct = pct(metrics_ms);
  const double ring_overhead_pct = pct(ring_ms);
  std::printf("telemetry overhead (grep, disk-only, min of 9): off=%.2f ms  "
              "metrics-on=%.2f ms (%+.1f%%)  ring=%.2f ms (%+.1f%%), "
              "results identical\n",
              off_ms, metrics_ms, overhead_pct, ring_ms, ring_overhead_pct);

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  os << "{\n";
  os << "  \"scenario\": \"grep (disk-only)\",\n";
  os << "  \"runs\": 9,\n";
  os << "  \"telemetry_off_ms\": " << off_ms << ",\n";
  os << "  \"telemetry_on_ms\": " << metrics_ms << ",\n";
  os << "  \"overhead_pct\": " << overhead_pct << ",\n";
  os << "  \"overhead_budget_pct\": " << kMetricsOverheadBudgetPct << ",\n";
  os << "  \"ring_on_ms\": " << ring_ms << ",\n";
  os << "  \"ring_overhead_pct\": " << ring_overhead_pct << ",\n";
  os << "  \"events_emitted\": "
     << r_ring.metrics.value("telemetry.events_emitted") << ",\n";
  os << "  \"results_identical\": true\n";
  os << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (overhead_pct >= kMetricsOverheadBudgetPct) {
    std::fprintf(stderr,
                 "TELEMETRY OVERHEAD GATE: metrics-on costs %+.1f%% "
                 "(budget < %.1f%%)\n",
                 overhead_pct, kMetricsOverheadBudgetPct);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Arena hot-path speedup record (BENCH_hotpath.json).
//
// The "before" figures were measured immediately prior to the arena rewrite
// (list-based 2Q cache, std::map C-SCAN, per-run trace scans) on the same
// machine and with the same workload loops as the live "after" measurement
// below, Release build, -O2 -flto. They are recorded constants so every
// rerun reports the delta against the same pre-rewrite state.

struct HotpathBefore {
  double cache_fill_evict_mops = 4.188;
  double cache_lookup_hit_mops = 134.592;
  double cscan_mixed_mops = 47.628;
  double full_sim_grep_ms = 2.710;        // grep / disk-only, min of 5.
  std::uint64_t full_sim_grep_syscalls = 6399;
  double cell_total_ms = 107.18;          // 5 scenarios x 2 policies, min of 3.
  double cell_syscalls_per_sec = 522579;
};

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Measures the current hot paths with the pre-rewrite workload loops and
/// writes before/after/speedup tuples to `out_path`.
int record_hotpath(const std::string& out_path) {
  using Clock = std::chrono::steady_clock;
  const HotpathBefore before;

  // 1. 2Q fill/evict steady state (capacity 1024, sequential page stream).
  double fill_evict_mops = 0.0;
  {
    os::BufferCacheConfig config;
    config.capacity_pages = 1024;
    os::BufferCache cache(config);
    std::vector<os::DirtyPage> flushed;
    flushed.reserve(16);
    constexpr std::uint64_t kOps = 4'000'000;
    for (std::uint64_t i = 0; i < 2048; ++i) cache.fill(os::PageId{1, i}, Seconds{0.0});
    const auto t0 = Clock::now();
    for (std::uint64_t i = 2048; i < kOps; ++i) {
      cache.fill(os::PageId{1, i}, Seconds{0.0}, flushed);
    }
    fill_evict_mops = static_cast<double>(kOps - 2048) / secs_since(t0) / 1e6;
  }

  // 2. 2Q lookup hit.
  double lookup_hit_mops = 0.0;
  {
    os::BufferCache cache;
    for (std::uint64_t i = 0; i < 1000; ++i) cache.fill(os::PageId{1, i}, Seconds{0.0});
    constexpr std::uint64_t kOps = 20'000'000;
    std::uint64_t hits = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      hits += cache.lookup(os::PageId{1, i % 1000}, Seconds{0.0}) ? 1u : 0u;
    }
    const double s = secs_since(t0);
    benchmark::DoNotOptimize(hits);
    lookup_hit_mops = static_cast<double>(kOps) / s / 1e6;
  }

  // 3. C-SCAN submit/dispatch, mixed merge workload (3 of 4 submissions
  //    extend the previous request, 1 of 4 jumps).
  double cscan_mops = 0.0;
  {
    os::CScanScheduler sched;
    constexpr std::uint64_t kOps = 4'000'000;
    Bytes lba = Bytes{0};
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      if (i % 4 == 0) lba = Bytes{(i * 7919) % (1ull << 30)};
      sched.submit(device::DeviceRequest{.lba = lba, .size = Bytes{4096}});
      lba += Bytes{4096};
      if (sched.pending() > 64) sched.dispatch();
    }
    while (sched.dispatch()) {
    }
    cscan_mops = static_cast<double>(kOps) / secs_since(t0) / 1e6;
  }

  // 4. Full simulation, grep / disk-only (min of 5).
  double full_sim_ms = 0.0;
  std::uint64_t full_sim_syscalls = 0;
  {
    const auto trace = workloads::grep_trace();
    double best = 1e18;
    for (int r = 0; r < 5; ++r) {
      policies::DiskOnlyPolicy policy;
      const auto t0 = Clock::now();
      const auto res = sim::simulate(sim::SimConfig{}, trace, policy);
      best = std::min(best, secs_since(t0));
      full_sim_syscalls = res.syscalls;
    }
    full_sim_ms = best * 1e3;
  }

  // 5. Full-sim cell throughput: every scenario x {flexfetch, disk-only},
  //    each cell min of 3 — the headline number for the arena rewrite.
  double cell_total_ms = 0.0;
  double cell_syscalls_per_sec = 0.0;
  {
    const auto scenarios = workloads::all_scenarios(1);
    const auto wnic = device::WnicParams::cisco_aironet350();
    double total_best = 0.0;
    std::uint64_t total_syscalls = 0;
    for (const auto& scenario : scenarios) {
      for (const char* policy : {"flexfetch", "disk-only"}) {
        sim::SweepCell cell;
        cell.scenario = &scenario;
        cell.policy = policy;
        cell.wnic = wnic;
        double best = 1e18;
        std::uint64_t syscalls = 0;
        for (int r = 0; r < 3; ++r) {
          const auto t0 = Clock::now();
          syscalls = sim::run_cell(cell).syscalls;
          best = std::min(best, secs_since(t0));
        }
        total_best += best;
        total_syscalls += syscalls;
      }
    }
    cell_total_ms = total_best * 1e3;
    cell_syscalls_per_sec = static_cast<double>(total_syscalls) / total_best;
  }

  std::printf(
      "hotpath: fill/evict %.2f Mops (%.2fx)  lookup %.2f Mops (%.2fx)  "
      "cscan %.2f Mops (%.2fx)  grep sim %.3f ms (%.2fx)  "
      "10-cell %.2f ms (%.2fx)\n",
      fill_evict_mops, fill_evict_mops / before.cache_fill_evict_mops,
      lookup_hit_mops, lookup_hit_mops / before.cache_lookup_hit_mops,
      cscan_mops, cscan_mops / before.cscan_mixed_mops, full_sim_ms,
      before.full_sim_grep_ms / full_sim_ms, cell_total_ms,
      before.cell_total_ms / cell_total_ms);

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  // Every entry: before (pre-arena), after (measured now), speedup (>1 is
  // an improvement regardless of the unit's direction).
  os << "{\n";
  os << "  \"note\": \"before = pre-arena-rewrite measurement on the same "
        "machine and workload loops; Release -O2\",\n";
  os << "  \"benchmarks\": [\n";
  const auto row = [&os](const char* name, const char* unit, double b,
                         double a, double speedup, bool last) {
    os << "    {\"name\": \"" << name << "\", \"unit\": \"" << unit
       << "\", \"before\": " << b << ", \"after\": " << a
       << ", \"speedup\": " << speedup << "}" << (last ? "\n" : ",\n");
  };
  row("cache_fill_evict", "Mops/s", before.cache_fill_evict_mops,
      fill_evict_mops, fill_evict_mops / before.cache_fill_evict_mops, false);
  row("cache_lookup_hit", "Mops/s", before.cache_lookup_hit_mops,
      lookup_hit_mops, lookup_hit_mops / before.cache_lookup_hit_mops, false);
  row("cscan_mixed_merge", "Mops/s", before.cscan_mixed_mops, cscan_mops,
      cscan_mops / before.cscan_mixed_mops, false);
  row("full_sim_grep_disk_only", "ms", before.full_sim_grep_ms, full_sim_ms,
      before.full_sim_grep_ms / full_sim_ms, false);
  row("cell_throughput_10_cells", "ms", before.cell_total_ms, cell_total_ms,
      before.cell_total_ms / cell_total_ms, true);
  os << "  ],\n";
  os << "  \"full_sim_grep_syscalls\": " << full_sim_syscalls << ",\n";
  os << "  \"cell_syscalls_per_sec_before\": " << before.cell_syscalls_per_sec
     << ",\n";
  os << "  \"cell_syscalls_per_sec_after\": " << cell_syscalls_per_sec << "\n";
  os << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (full_sim_syscalls != before.full_sim_grep_syscalls) {
    std::fprintf(stderr,
                 "HOTPATH PERTURBATION: grep simulation now issues %llu "
                 "syscalls (expected %llu)\n",
                 static_cast<unsigned long long>(full_sim_syscalls),
                 static_cast<unsigned long long>(before.full_sim_grep_syscalls));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string telemetry_out = "BENCH_telemetry.json";
  std::string hotpath_out = "BENCH_hotpath.json";
  bench::ParsedFlags flags;
  flags.add("telemetry-out", &telemetry_out, "FILE");
  flags.add("hotpath-out", &hotpath_out, "FILE");
  flags.parse(argc, argv);

  if (const int rc = record_telemetry_overhead(telemetry_out); rc != 0) {
    return rc;
  }
  if (const int rc = record_hotpath(hotpath_out); rc != 0) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
