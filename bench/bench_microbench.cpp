// Performance microbenchmarks of the simulation substrates: how fast do
// the building blocks run? (Simulation throughput is what makes the
// parameter sweeps in the figure benches cheap.)
//
// Also measures the telemetry overhead contract (near-zero when disabled):
// the same full simulation is timed with telemetry off and on, both results
// are checked for equality, and the pair is recorded in BENCH_telemetry.json
// (path overridable with --telemetry-out FILE).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/burst.hpp"
#include "core/estimator.hpp"
#include "os/buffer_cache.hpp"
#include "os/io_scheduler.hpp"
#include "sim/simulator.hpp"
#include "policies/fixed.hpp"
#include "trace/builder.hpp"
#include "workloads/generators.hpp"

using namespace flexfetch;

namespace {

void BM_BufferCacheLookupHit(benchmark::State& state) {
  os::BufferCache cache;
  for (std::uint64_t i = 0; i < 1000; ++i) cache.fill(os::PageId{1, i}, 0.0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(os::PageId{1, i % 1000}, 0.0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheLookupHit);

void BM_BufferCacheFillEvict(benchmark::State& state) {
  os::BufferCacheConfig config;
  config.capacity_pages = 1024;
  os::BufferCache cache(config);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(os::PageId{1, i++}, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheFillEvict);

void BM_CScanSubmitDispatch(benchmark::State& state) {
  os::CScanScheduler sched;
  std::uint64_t lba = 0;
  for (auto _ : state) {
    sched.submit(device::DeviceRequest{.lba = (lba * 7919) % (1 << 30),
                                       .size = 4096});
    ++lba;
    if (sched.pending() > 64) sched.dispatch();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CScanSubmitDispatch);

void BM_BurstExtraction(benchmark::State& state) {
  const auto trace = workloads::make_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_bursts(trace, 0.020).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_BurstExtraction)->Unit(benchmark::kMillisecond);

void BM_StageEstimate(benchmark::State& state) {
  const auto trace = workloads::mplayer_trace();
  const auto profile = core::Profile::from_trace(trace, 0.020);
  device::Disk disk;
  os::FileLayout layout(30 * kGiB);
  const auto span = profile.span(0, std::min<std::size_t>(profile.size(), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SourceEstimator::estimate_disk(disk, span, 0.0, layout).energy);
  }
}
BENCHMARK(BM_StageEstimate);

void BM_FullSimulationDiskOnly(benchmark::State& state) {
  const auto trace = workloads::grep_trace();
  for (auto _ : state) {
    policies::DiskOnlyPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(sim::SimConfig{}, trace, policy).total_energy());
  }
  // Report simulated-seconds per wall-second via the trace span.
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullSimulationDiskOnly)->Unit(benchmark::kMillisecond);

void BM_FullSimulationTelemetryOn(benchmark::State& state) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  for (auto _ : state) {
    policies::DiskOnlyPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(config, trace, policy).total_energy());
  }
  state.SetItemsProcessed(static_cast<int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_FullSimulationTelemetryOn)->Unit(benchmark::kMillisecond);

/// Min-of-K wall-clock of one full grep simulation under `config`.
double min_sim_millis(const sim::SimConfig& config, const trace::Trace& trace,
                      sim::SimResult* out) {
  constexpr int kRuns = 5;
  double best = 1e18;
  for (int i = 0; i < kRuns; ++i) {
    policies::DiskOnlyPolicy policy;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = sim::simulate(config, trace, policy);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, ms);
    if (out != nullptr) *out = std::move(result);
  }
  return best;
}

/// Times telemetry-off vs telemetry-on, asserts identical simulation
/// outcomes, and records both in a JSON file diffable across PRs.
int record_telemetry_overhead(const std::string& out_path) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig off;
  sim::SimConfig on;
  on.telemetry.enabled = true;

  sim::SimResult r_off, r_on;
  const double off_ms = min_sim_millis(off, trace, &r_off);
  const double on_ms = min_sim_millis(on, trace, &r_on);

  const bool identical = r_off.total_energy() == r_on.total_energy() &&
                         r_off.makespan == r_on.makespan &&
                         r_off.io_time == r_on.io_time &&
                         r_off.syscalls == r_on.syscalls &&
                         r_off.disk_requests == r_on.disk_requests &&
                         r_off.net_requests == r_on.net_requests;
  if (!identical) {
    std::fprintf(stderr,
                 "TELEMETRY PERTURBATION: enabling telemetry changed the "
                 "simulation result\n");
    return 1;
  }

  const double overhead_pct =
      off_ms > 0.0 ? (on_ms / off_ms - 1.0) * 100.0 : 0.0;
  std::printf("telemetry overhead (grep, disk-only, min of 5): "
              "off=%.2f ms on=%.2f ms (%+.1f%%), results identical\n",
              off_ms, on_ms, overhead_pct);

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  os << "{\n";
  os << "  \"scenario\": \"grep (disk-only)\",\n";
  os << "  \"runs\": 5,\n";
  os << "  \"telemetry_off_ms\": " << off_ms << ",\n";
  os << "  \"telemetry_on_ms\": " << on_ms << ",\n";
  os << "  \"overhead_pct\": " << overhead_pct << ",\n";
  os << "  \"events_emitted\": " << r_on.metrics.value("telemetry.events_emitted") << ",\n";
  os << "  \"results_identical\": true\n";
  os << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string telemetry_out = "BENCH_telemetry.json";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_out = argv[++i];
    } else if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
      telemetry_out = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      argv[out++] = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [--telemetry-out FILE] "
                           "[--benchmark_*...]\n",
                   argv[0]);
      return 2;
    }
  }
  argc = out;
  argv[argc] = nullptr;

  if (const int rc = record_telemetry_overhead(telemetry_out); rc != 0) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
