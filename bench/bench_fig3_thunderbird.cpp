// Figure 3 — "Thunderbird: Energy consumptions with various WNIC bandwidths
// and latencies" (Section 3.3.3, the email search scenario).
//
// Expected shape (paper): Disk-only is expensive (sparse small email reads
// thrash the spin-down timer); WNIC-only crosses above Disk-only past
// ~15 ms latency; FlexFetch beats BlueFS by ~17% and both adaptive schemes
// are insensitive to bandwidth.

#include <benchmark/benchmark.h>

#include "harness.hpp"

using namespace flexfetch;

namespace {

void BM_SimulateThunderbirdFlexFetch(benchmark::State& state) {
  const auto scenario = workloads::scenario_thunderbird(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "flexfetch",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_SimulateThunderbirdFlexFetch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::SweepSpec spec;
  const auto opts = bench::parse_harness_flags(argc, argv);
  spec.jobs = opts.jobs;
  spec.metrics = opts.metrics;
  spec.trace_out = opts.trace_out;
  spec.fault_seed = opts.fault_seed;
  spec.policies = {"flexfetch", "bluefs", "disk-only", "wnic-only"};
  bench::print_figure("Figure 3 (Thunderbird)",
                      workloads::scenario_thunderbird(1), spec);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
