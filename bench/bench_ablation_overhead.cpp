// Ablation H — the scheme's own overhead, the question the paper's
// Section 5 defers ("time, space, and energy overhead of applying the
// scheme"). Every estimator replay, shadow replay and tracked syscall is
// counted and charged a configurable CPU cost; the bench compares the
// scheme's spend against the I/O energy it saves over the better fixed
// policy.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/format.hpp"
#include "core/flexfetch.hpp"
#include "harness.hpp"
#include "policies/factory.hpp"

using namespace flexfetch;

namespace {

void report() {
  std::printf("%-24s %10s %10s %10s %12s %14s %12s\n", "scenario", "est-ops",
              "shadow", "syscalls", "overhead[J]", "saving[J]", "ratio");
  const auto wnic = device::WnicParams::cisco_aironet350();
  for (const auto& scenario : workloads::all_scenarios(1)) {
    core::FlexFetchPolicy ff(core::FlexFetchConfig{}, scenario.profiles);
    sim::Simulator simulator(sim::SimConfig{}, scenario.programs, ff);
    const auto r = simulator.run();

    const double disk_e =
        bench::run_once(scenario, "disk-only", wnic).total_energy().value();
    const double net_e =
        bench::run_once(scenario, "wnic-only", wnic).total_energy().value();
    const double saving = std::min(disk_e, net_e) - r.total_energy().value();
    const auto& s = ff.stats();
    const double overhead = ff.overhead_energy().value();
    std::printf("%-24s %10llu %10llu %10llu %12.4f %14.1f %12s\n",
                scenario.name.c_str(),
                static_cast<unsigned long long>(s.estimator_requests_replayed),
                static_cast<unsigned long long>(s.shadow_requests_replayed),
                static_cast<unsigned long long>(s.syscalls_tracked), overhead,
                saving,
                overhead > 0 && saving > 0
                    ? strprintf("1:%.0f", saving / overhead).c_str()
                    : "-");
  }
  std::printf("\n(overhead charged at %.1f uJ per scheme operation — a ~1 us"
              " slice of a 2 W mobile CPU)\n",
              core::FlexFetchConfig{}.overhead_per_op.value() * 1e6);
}

void BM_DecisionEvaluation(benchmark::State& state) {
  const auto scenario = workloads::scenario_thunderbird(1);
  const auto merged = core::Profile::merge(scenario.profiles, "bench");
  device::Disk disk;
  device::Wnic wnic;
  os::FileLayout layout(30 * kGiB);
  const auto span = merged.span(0, std::min<std::size_t>(merged.size(), 8));
  for (auto _ : state) {
    const auto d = core::SourceEstimator::estimate_disk(disk, span, Seconds{0.0}, layout);
    const auto n = core::SourceEstimator::estimate_network(wnic, span, Seconds{0.0});
    benchmark::DoNotOptimize(core::decide_source(d, n, 0.25));
  }
}
BENCHMARK(BM_DecisionEvaluation);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  std::printf("=== Ablation H: scheme overhead vs energy saved ===\n\n");
  report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
