// Ablation B — the four run-time adaptation mechanisms of Section 2.3,
// disabled one at a time on the two scenarios that stress them: the forced
// disk spin-up (Figure 4) and the stale profile (Figure 5).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flexfetch.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"

using namespace flexfetch;

namespace {

struct Variant {
  const char* label;
  core::FlexFetchConfig config;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full", core::FlexFetchConfig{}});
  {
    core::FlexFetchConfig c;
    c.adapt_splice = false;
    out.push_back({"-splice", c});
  }
  {
    core::FlexFetchConfig c;
    c.adapt_stage_audit = false;
    out.push_back({"-stage-audit", c});
  }
  {
    core::FlexFetchConfig c;
    c.adapt_cache_filter = false;
    out.push_back({"-cache-filter", c});
  }
  {
    core::FlexFetchConfig c;
    c.adapt_free_rider = false;
    out.push_back({"-free-rider", c});
  }
  out.push_back({"none (static)", core::FlexFetchConfig::static_variant()});
  return out;
}

void run_scenario(const workloads::ScenarioBundle& scenario) {
  std::printf("--- %s ---\n", scenario.name.c_str());
  std::printf("%-16s %12s %12s %9s %9s %9s %9s\n", "variant", "energy[J]",
              "makespan", "splices", "audits", "freerides", "filtered");
  for (const auto& v : variants()) {
    core::FlexFetchPolicy policy(v.config, scenario.profiles);
    sim::Simulator simulator(sim::SimConfig{}, scenario.programs, policy);
    const auto r = simulator.run();
    const auto& s = policy.stats();
    std::printf("%-16s %12.1f %12.1f %9llu %9llu %9llu %9llu\n", v.label,
                r.total_energy().value(), r.makespan.value(),
                static_cast<unsigned long long>(s.splice_switches),
                static_cast<unsigned long long>(s.audit_overrides),
                static_cast<unsigned long long>(s.free_rider_redirects),
                static_cast<unsigned long long>(s.cache_filtered_requests));
  }
  std::printf("\n");
}

void BM_AdaptiveFlexFetchForcedSpinup(benchmark::State& state) {
  const auto scenario = workloads::scenario_forced_spinup(1);
  for (auto _ : state) {
    core::FlexFetchPolicy policy(core::FlexFetchConfig{}, scenario.profiles);
    sim::Simulator simulator(sim::SimConfig{}, scenario.programs, policy);
    benchmark::DoNotOptimize(simulator.run().total_energy());
  }
}
BENCHMARK(BM_AdaptiveFlexFetchForcedSpinup)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  std::printf("=== Ablation B: Section 2.3 adaptation mechanisms ===\n\n");
  run_scenario(workloads::scenario_forced_spinup(1));
  run_scenario(workloads::scenario_stale_acroread(1));
  run_scenario(workloads::scenario_thunderbird(1));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
