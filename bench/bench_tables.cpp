// Regenerates Tables 1-3 of the paper: the device parameter tables and the
// trace inventory, plus derived quantities (disk break-even time) that the
// model exposes. Also registers google-benchmark timings of the substrate
// primitives those tables parameterize.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/format.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "harness.hpp"
#include "workloads/generators.hpp"

using namespace flexfetch;

namespace {

void print_table1() {
  const auto p = device::DiskParams::hitachi_dk23da();
  std::printf("=== Table 1: Hitachi DK23DA hard disk parameters ===\n");
  std::printf("  P_active    Active Power      %.2f W\n",
              p.active_power.value());
  std::printf("  P_idle      Idle Power        %.2f W\n", p.idle_power.value());
  std::printf("  P_standby   Standby Power     %.2f W\n",
              p.standby_power.value());
  std::printf("  E_spinup    Spin up Energy    %.2f J\n",
              p.spin_up_energy.value());
  std::printf("  E_spindown  Spin down Energy  %.2f J\n",
              p.spin_down_energy.value());
  std::printf("  T_spinup    Spin up Time      %.2f s\n",
              p.spin_up_time.value());
  std::printf("  T_spindown  Spin down Time    %.2f s\n",
              p.spin_down_time.value());
  std::printf("  bandwidth %.0f MB/s, avg seek %.0f ms, avg rotation %.0f ms, "
              "timeout %.0f s\n",
              p.bandwidth.value() / 1e6, p.avg_seek_time.value() * 1e3,
              p.avg_rotation_time.value() * 1e3,
              p.spin_down_timeout.value());
  std::printf("  derived break-even time: %.2f s\n\n",
              p.break_even_time().value());
}

void print_table2() {
  const auto p = device::WnicParams::cisco_aironet350();
  std::printf("=== Table 2: Cisco Aironet 350 WNIC parameters ===\n");
  std::printf("  PSM (idle/recv/send)       %.2f W / %.2f W / %.2f W\n",
              p.psm_idle_power.value(), p.psm_recv_power.value(),
              p.psm_send_power.value());
  std::printf("  CAM (idle/recv/send)       %.2f W / %.2f W / %.2f W\n",
              p.cam_idle_power.value(), p.cam_recv_power.value(),
              p.cam_send_power.value());
  std::printf("  CAM->PSM (delay/energy)    %.2f s / %.2f J\n",
              p.cam_to_psm_delay.value(), p.cam_to_psm_energy.value());
  std::printf("  PSM->CAM (delay/energy)    %.2f s / %.2f J\n",
              p.psm_to_cam_delay.value(), p.psm_to_cam_energy.value());
  std::printf("  PSM timeout %.1f s, bandwidth %.1f Mbps, latency %.1f ms\n\n",
              p.psm_timeout.value(), p.bandwidth.value() * 8.0 / 1e6,
              p.latency.value() * 1e3);
}

void print_table3() {
  std::printf("=== Table 3: trace inventory (synthetic reproductions) ===\n");
  std::printf("  %-12s %-24s %8s %10s %10s\n", "Name", "Description", "#File",
              "Size(MB)", "Span");
  struct Row {
    const char* name;
    const char* description;
    trace::Trace trace;
  };
  const Row rows[] = {
      {"Thunderbird", "an email client", workloads::thunderbird_trace()},
      {"make", "building Linux kernel", workloads::make_trace()},
      {"grep", "a text search tool", workloads::grep_trace()},
      {"xmms", "a mp3 player", workloads::xmms_trace()},
      {"mplayer", "a movie player", workloads::mplayer_trace()},
      {"Acroread", "a PDF file reader", workloads::acroread_trace()},
  };
  for (const auto& row : rows) {
    const auto s = row.trace.stats();
    std::printf("  %-12s %-24s %8zu %10.1f %10s\n", row.name, row.description,
                s.distinct_files, s.footprint.as_double() / 1e6,
                format_seconds(s.duration).c_str());
  }
  std::printf("\n");
}

// --- google-benchmark timings of the primitives the tables parameterize ---

void BM_DiskService(benchmark::State& state) {
  device::Disk disk;
  Seconds t = Seconds{0.0};
  const auto size = Bytes{static_cast<std::uint64_t>(state.range(0))};
  Bytes lba = Bytes{0};
  for (auto _ : state) {
    const auto res =
        disk.service(t, device::DeviceRequest{.lba = lba, .size = size});
    benchmark::DoNotOptimize(res.energy);
    t = res.completion + Seconds{0.001};
    lba += size + Bytes{1};  // Non-sequential: exercise positioning.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskService)->Arg(4096)->Arg(131072);

void BM_WnicService(benchmark::State& state) {
  device::Wnic wnic;
  Seconds t = Seconds{0.0};
  const auto size = Bytes{static_cast<std::uint64_t>(state.range(0))};
  for (auto _ : state) {
    const auto res = wnic.service(t, device::DeviceRequest{.size = size});
    benchmark::DoNotOptimize(res.energy);
    t = res.completion + Seconds{0.001};
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WnicService)->Arg(4096)->Arg(131072);

void BM_TraceGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto t = workloads::grep_trace(workloads::GrepParams{}, seed, seed);
    benchmark::DoNotOptimize(t.size());
    ++seed;
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  print_table1();
  print_table2();
  print_table3();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
