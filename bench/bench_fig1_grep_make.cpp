// Figure 1 — "grep+make: Energy consumptions with various WNIC bandwidths
// and latencies" (Section 3.3.1, the programming scenario).
//
// Expected shape (paper): at low latency BlueFS > Disk-only > WNIC-only >
// FlexFetch; WNIC-only rises steeply with latency and crosses Disk-only;
// FlexFetch converges towards Disk-only at high latency.

#include <benchmark/benchmark.h>

#include "harness.hpp"

using namespace flexfetch;

namespace {

void BM_SimulateGrepMakeFlexFetch(benchmark::State& state) {
  const auto scenario = workloads::scenario_grep_make(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "flexfetch",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_SimulateGrepMakeFlexFetch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::SweepSpec spec;
  const auto opts = bench::parse_harness_flags(argc, argv);
  spec.jobs = opts.jobs;
  spec.metrics = opts.metrics;
  spec.trace_out = opts.trace_out;
  spec.fault_seed = opts.fault_seed;
  spec.policies = {"flexfetch", "bluefs", "disk-only", "wnic-only"};
  bench::print_figure("Figure 1 (grep+make)", workloads::scenario_grep_make(1),
                      spec);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
