// Fleet-scale population sweep driver: N synthetic users sharded across
// worker PROCESSES, with an automated bit-identity gate against the
// single-process reference.
//
//   ./build/bench/bench_fleet [--users N] [--block-size B] [--workers W]
//                             [--seed S] [--policies a,b,c]
//                             [--workload-scale X] [--telemetry]
//                             [--checkpoint-dir DIR] [--resume]
//                             [--no-baseline] [--out FILE]
//
// The parent first runs the whole population in-process (the monolithic
// baseline) and fingerprints the aggregate, then re-execs itself W times
// with --worker-shard k. Each worker runs its interleaved block set and
// appends exact (hexfloat) per-block summaries to DIR/shard-k, flushed
// per block. The parent merges every recovered block in block-index
// order and GATES on fingerprint equality with the baseline: the sharded
// multi-process aggregate must be bit-identical to the single-process
// one, whatever the worker count or completion order (see
// src/fleet/runner.hpp for why that holds). BENCH_fleet.json records
// throughput (users/sec), the multi-process speedup over the baseline,
// peak RSS of parent and every shard, per-shard wall times, and the
// per-stratum aggregates.
//
// --resume keeps existing checkpoint lines and runs only the missing
// blocks — kill a run, rerun with --resume, and the merged result is
// bit-identical to an uninterrupted one (the per-block lines a killed
// worker already flushed are reused verbatim; a torn trailing line is
// dropped by the loader and that block simply reruns).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/population.hpp"
#include "fleet/process.hpp"
#include "fleet/runner.hpp"
#include "harness.hpp"
#include "sim/sweep.hpp"

using namespace flexfetch;

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

struct FleetFlags {
  std::uint64_t users = 1000;
  int block_size = 0;  // 0 = FleetConfig default
  int workers = 2;
  std::uint64_t seed = 1;
  std::string policies_csv;
  std::string workload_scale;  // parsed as double; string keeps flags simple
  bool telemetry = false;
  std::string checkpoint_dir = "BENCH_fleet.ckpt";
  bool resume = false;
  bool no_baseline = false;
  std::string out_path = "BENCH_fleet.json";
  int worker_shard = -1;
};

fleet::FleetConfig config_from(const FleetFlags& f) {
  fleet::FleetConfig config;
  config.population.master_seed = f.seed;
  config.population.scenario_seed = f.seed;
  if (!f.policies_csv.empty()) {
    config.population.policies = split_csv(f.policies_csv);
  }
  config.users = f.users;
  if (f.block_size > 0) {
    config.block_size = static_cast<std::uint64_t>(f.block_size);
  }
  config.workers = f.workers;
  config.telemetry = f.telemetry;
  if (!f.workload_scale.empty()) {
    config.tuning.workload_scale = std::atof(f.workload_scale.c_str());
  }
  return config;
}

/// The exact flag vector a worker needs to rebuild the parent's config.
std::vector<std::string> worker_argv(const FleetFlags& f, int shard) {
  std::vector<std::string> argv = {fleet::self_exe_path(),
                                   "--worker-shard",
                                   std::to_string(shard),
                                   "--users",
                                   std::to_string(f.users),
                                   "--workers",
                                   std::to_string(f.workers),
                                   "--seed",
                                   std::to_string(f.seed),
                                   "--checkpoint-dir",
                                   f.checkpoint_dir};
  if (f.block_size > 0) {
    argv.push_back("--block-size");
    argv.push_back(std::to_string(f.block_size));
  }
  if (!f.policies_csv.empty()) {
    argv.push_back("--policies");
    argv.push_back(f.policies_csv);
  }
  if (!f.workload_scale.empty()) {
    argv.push_back("--workload-scale");
    argv.push_back(f.workload_scale);
  }
  if (f.telemetry) argv.push_back("--telemetry");
  return argv;
}

int run_worker(const FleetFlags& f) {
  const fleet::FleetConfig config = config_from(f);
  const fleet::PopulationGenerator gen(config.population);
  fleet::ScenarioCatalog catalog(config.population.scenario_seed,
                                 config.population.think_scales,
                                 config.tuning);

  // Skip anything already durable (this shard's pre-kill progress AND any
  // block another worker count's layout already covered).
  const fleet::CheckpointState state =
      fleet::load_checkpoint_dir(f.checkpoint_dir);
  std::set<std::uint64_t> done;
  for (const auto& [index, summary] : state.blocks) done.insert(index);

  const std::filesystem::path path =
      std::filesystem::path(f.checkpoint_dir) /
      fleet::shard_file_name(f.worker_shard);
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "bench_fleet worker %d: cannot open %s\n",
                 f.worker_shard, path.c_str());
    return 1;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const fleet::ShardRunStats stats =
      fleet::run_shard(config, gen, catalog, f.worker_shard, done, out);

  fleet::ShardMeta meta;
  meta.shard = f.worker_shard;
  meta.wall_seconds = wall_seconds_since(t0);
  meta.peak_rss_bytes = bench::peak_rss_bytes();
  meta.users = stats.users;
  meta.blocks = stats.blocks;
  fleet::write_meta_line(out, meta);
  out.flush();
  return out ? 0 : 1;
}

void write_fleet_json(std::ostream& os, const fleet::FleetConfig& config,
                      const sim::SweepAggregator& agg,
                      const std::vector<fleet::ShardMeta>& metas,
                      double wall_seconds, double baseline_wall_seconds,
                      bool baseline_ran, bool identical,
                      std::uint64_t resumed_blocks) {
  os << "{\n";
  os << "  \"users\": " << config.users << ",\n";
  os << "  \"block_size\": " << config.block_size << ",\n";
  os << "  \"blocks\": " << fleet::block_count(config) << ",\n";
  os << "  \"workers\": " << config.workers << ",\n";
  os << "  \"hardware_concurrency\": " << ThreadPool::default_concurrency()
     << ",\n";
  os << "  \"workload_scale\": " << config.tuning.workload_scale << ",\n";
  os << "  \"telemetry\": " << (config.telemetry ? "true" : "false") << ",\n";
  os << "  \"wall_seconds\": " << wall_seconds << ",\n";
  os << "  \"users_per_sec\": "
     << (wall_seconds > 0.0 ? static_cast<double>(config.users) / wall_seconds
                            : 0.0)
     << ",\n";
  os << "  \"baseline\": " << (baseline_ran ? "true" : "false") << ",\n";
  os << "  \"baseline_wall_seconds\": " << baseline_wall_seconds << ",\n";
  os << "  \"speedup\": "
     << (baseline_ran && wall_seconds > 0.0
             ? baseline_wall_seconds / wall_seconds
             : 0.0)
     << ",\n";
  os << "  \"aggregates_identical\": " << (identical ? "true" : "false")
     << ",\n";
  os << "  \"resumed_blocks\": " << resumed_blocks << ",\n";
  os << "  \"peak_rss_bytes\": " << bench::peak_rss_bytes() << ",\n";
  os << "  \"shards\": [\n";
  for (std::size_t i = 0; i < metas.size(); ++i) {
    const fleet::ShardMeta& m = metas[i];
    os << "    {\"shard\": " << m.shard << ", \"wall_seconds\": "
       << m.wall_seconds << ", \"peak_rss_bytes\": " << m.peak_rss_bytes
       << ", \"users\": " << m.users << ", \"blocks\": " << m.blocks << "}"
       << (i + 1 < metas.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"cells\": " << agg.cells_seen() << ",\n";
  sim::write_strata_json(os, agg, 2);
  os << "\n}\n";
}

int run_parent(const FleetFlags& f) {
  const fleet::FleetConfig config = config_from(f);
  const fleet::PopulationGenerator gen(config.population);
  const std::uint64_t n_blocks = fleet::block_count(config);
  std::printf("fleet: %llu users in %llu blocks of %llu, %d workers\n",
              static_cast<unsigned long long>(config.users),
              static_cast<unsigned long long>(n_blocks),
              static_cast<unsigned long long>(config.block_size),
              config.workers);

  namespace fs = std::filesystem;
  fs::create_directories(f.checkpoint_dir);
  std::uint64_t resumed_blocks = 0;
  if (f.resume) {
    resumed_blocks =
        fleet::load_checkpoint_dir(f.checkpoint_dir).blocks.size();
    std::printf("resume: %llu blocks already durable\n",
                static_cast<unsigned long long>(resumed_blocks));
  } else {
    // Fresh run: clear this run's own scratch files (and nothing else).
    for (const auto& entry : fs::directory_iterator(f.checkpoint_dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("shard-", 0) == 0) {
        fs::remove(entry.path());
      }
    }
  }

  // Single-process reference: same block fold, no serialization.
  double baseline_wall = 0.0;
  std::string baseline_fp;
  if (!f.no_baseline) {
    fleet::ScenarioCatalog catalog(config.population.scenario_seed,
                                   config.population.think_scales,
                                   config.tuning);
    const auto t0 = std::chrono::steady_clock::now();
    const sim::SweepAggregator mono =
        fleet::run_monolithic(config, gen, catalog);
    baseline_wall = wall_seconds_since(t0);
    baseline_fp = fleet::fingerprint(mono);
    std::printf("baseline (1 process): %.2f s, %.0f users/s\n", baseline_wall,
                static_cast<double>(config.users) / baseline_wall);
  }

  // Multi-process pass: one child per shard, all concurrent.
  std::vector<std::vector<std::string>> argvs;
  argvs.reserve(static_cast<std::size_t>(config.workers));
  for (int w = 0; w < config.workers; ++w) {
    argvs.push_back(worker_argv(f, w));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto results = fleet::run_processes(argvs);
  const double wall = wall_seconds_since(t1);
  for (int w = 0; w < config.workers; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    if (!r.ok()) {
      std::fprintf(stderr, "bench_fleet: worker %d failed (%s %d)\n", w,
                   r.signaled ? "signal" : "exit",
                   r.signaled ? r.term_signal : r.exit_code);
      return 1;
    }
  }
  std::printf("sharded (%d processes): %.2f s, %.0f users/s\n", config.workers,
              wall, static_cast<double>(config.users) / wall);

  // Merge and gate.
  const fleet::CheckpointState state =
      fleet::load_checkpoint_dir(f.checkpoint_dir);
  const sim::SweepAggregator merged = fleet::merge_blocks(config, state.blocks);
  bool identical = false;
  if (!f.no_baseline) {
    identical = fleet::fingerprint(merged) == baseline_fp;
    if (!identical) {
      std::fprintf(stderr,
                   "BIT-IDENTITY VIOLATION: sharded merge differs from the "
                   "single-process aggregate\n");
      return 1;
    }
    std::printf("bit-identity: sharded merge == single-process aggregate "
                "(%llu blocks, %d workers)\n",
                static_cast<unsigned long long>(n_blocks), config.workers);
  }

  std::vector<fleet::ShardMeta> metas = state.metas;
  std::sort(metas.begin(), metas.end(),
            [](const fleet::ShardMeta& a, const fleet::ShardMeta& b) {
              return a.shard < b.shard;
            });

  std::ofstream os(f.out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", f.out_path.c_str());
    return 1;
  }
  write_fleet_json(os, config, merged, metas, wall, baseline_wall,
                   !f.no_baseline, identical, resumed_blocks);
  std::printf("wrote %s (%zu strata)\n", f.out_path.c_str(),
              merged.strata().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    FleetFlags f;
    bench::ParsedFlags flags;
    flags.add("users", &f.users, "N");
    flags.add("block-size", &f.block_size, "B");
    flags.add("workers", &f.workers, "W");
    flags.add("seed", &f.seed, "S");
    flags.add("policies", &f.policies_csv, "a,b,c");
    flags.add("workload-scale", &f.workload_scale, "X");
    flags.add("telemetry", &f.telemetry);
    flags.add("checkpoint-dir", &f.checkpoint_dir, "DIR");
    flags.add("resume", &f.resume);
    flags.add("no-baseline", &f.no_baseline);
    flags.add("out", &f.out_path, "FILE");
    flags.add("worker-shard", &f.worker_shard, "K");
    flags.parse(argc, argv);
    return f.worker_shard >= 0 ? run_worker(f) : run_parent(f);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fleet: %s\n", e.what());
    return 1;
  }
}
