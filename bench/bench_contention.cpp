// Shared-medium contention sweep: N clients against one AP and one
// finite-capacity server (src/medium/), crossed with the server admission
// policy and the per-client data-source policy.
//
//   ./build/bench/bench_contention [--jobs N] [--clients 1,2,4,8,16]
//                                  [--policies flexfetch,wnic-only]
//                                  [--admissions fifo,battery] [--seed S]
//                                  [--out FILE]
//
// Each cell runs a MultiClientSim: client i replays paper scenario i mod 5
// with its own policy instance, a PHY link-quality penalty and a battery
// state (client 0 always starts low, below the server's battery-aware
// admission threshold). The record written to BENCH_contention.json
// deliberately carries no timing fields: with fixed seeds it is
// byte-identical across reruns and across --jobs values — that identity is
// the determinism gate CI leans on. Two headline comparisons land in its
// "summary" object:
//
//  * split shift — FlexFetch's network/disk byte split in the contended
//    N>=4 FIFO cell vs the same client mix run solo (each client alone on
//    a private channel, identical spec): contention raises the priced
//    cost of every network fetch, so bytes migrate toward the disk;
//  * battery-aware benefit — the low-battery client's energy under
//    "battery" vs "fifo" admission at the largest N with wnic-only
//    clients: trunk-reserved slots cut its CAM queueing time.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "harness.hpp"
#include "medium/multi_client.hpp"
#include "policies/factory.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

struct Cell {
  int clients = 1;
  std::string admission;
  std::string policy;
};

medium::ServerParams server_params(const std::string& admission) {
  medium::ServerParams p;
  p.capacity = 2;
  p.reserved_slots = 1;
  p.low_battery_threshold = 0.30;
  p.admission = admission;
  return p;
}

/// Client i's starting battery: client 0 is always low (below the
/// admission threshold); the rest ramp from 0.40 up to 1.0.
double initial_battery(int i, int n) {
  if (i == 0) return 0.12;
  if (n <= 2) return 0.40;
  return 0.40 + 0.60 * static_cast<double>(i - 1) /
                    static_cast<double>(n - 2 > 0 ? n - 2 : 1);
}

/// Client i's spec in an n-client cell (sans policy, which the caller
/// owns): scenario i mod 5, PHY quality degrading with distance, battery
/// per initial_battery.
medium::ClientSpec make_spec(int i, int n,
                             const workloads::ScenarioBundle& bundle) {
  medium::ClientSpec spec;
  spec.name = bundle.name + "#" + std::to_string(i);
  spec.programs = bundle.programs;
  // Crowded-cell link rate: a busy AP falls back from 11 to 5.5 Mb/s PHY
  // (802.11b rate adaptation under interference), which delivers ~3 Mb/s
  // of MAC-layer goodput. The solo baseline uses the same spec, so the
  // contended-vs-solo comparison isolates contention itself, not the
  // rate. This matters: at the full 11 Mb/s the paper's sparse traces
  // leave the medium >90% idle, nothing contends, and every cell
  // degenerates to N independent runs. Near the disk/network breakeven,
  // dividing the airtime genuinely moves decisions.
  spec.config.wnic = spec.config.wnic.with_bandwidth_mbps(3.0);
  spec.link_quality = 1.0 - 0.05 * static_cast<double>(i % 4);
  spec.battery.initial_fraction = initial_battery(i, n);
  return spec;
}

medium::MultiClientResult run_contention_cell(
    const Cell& cell, const std::vector<workloads::ScenarioBundle>& bundles) {
  medium::MultiClientConfig config;
  config.server = server_params(cell.admission);

  std::vector<std::unique_ptr<sim::Policy>> policies;
  std::vector<medium::ClientSpec> specs;
  policies.reserve(static_cast<std::size_t>(cell.clients));
  specs.reserve(static_cast<std::size_t>(cell.clients));
  for (int i = 0; i < cell.clients; ++i) {
    const workloads::ScenarioBundle& b = bundles[static_cast<std::size_t>(i)];
    policies.push_back(policies::make_policy(cell.policy, b.profiles,
                                             &b.oracle_future, 0.25));
    medium::ClientSpec spec = make_spec(i, cell.clients, b);
    spec.policy = policies.back().get();
    specs.push_back(std::move(spec));
  }
  medium::MultiClientSim sim(config, std::move(specs));
  return sim.run();
}

/// The uncontended reference for an n-client cell: each client of the
/// same mix run *alone* — identical trace, PHY quality and battery, a
/// whole AP and server to itself — byte totals summed. The delta against
/// the contended cell is therefore pure contention (airtime division +
/// slot queueing), not scenario mix or link quality.
struct SoloBaseline {
  double energy_j = 0.0;
  std::uint64_t net_bytes = 0;
  std::uint64_t disk_bytes = 0;

  double net_fraction() const {
    const double total = static_cast<double>(net_bytes + disk_bytes);
    return total > 0.0 ? static_cast<double>(net_bytes) / total : 0.0;
  }
};

SoloBaseline run_solo_baseline(
    int n, const std::string& policy,
    const std::vector<workloads::ScenarioBundle>& bundles) {
  SoloBaseline base;
  for (int i = 0; i < n; ++i) {
    const workloads::ScenarioBundle& b = bundles[static_cast<std::size_t>(i)];
    const auto pol =
        policies::make_policy(policy, b.profiles, &b.oracle_future, 0.25);
    medium::ClientSpec spec = make_spec(i, n, b);
    spec.policy = pol.get();
    medium::MultiClientConfig config;
    config.server = server_params("fifo");
    medium::MultiClientSim sim(config, {std::move(spec)});
    const auto result = sim.run();
    base.net_bytes += result.clients[0].net_bytes.value();
    base.disk_bytes += result.clients[0].disk_bytes.value();
    base.energy_j += result.clients[0].total_energy().value();
  }
  return base;
}

/// Everything the JSON record (and the identity check) needs — totals are
/// plain doubles/integers so two runs can be compared field by field.
struct CellRecord {
  Cell cell;
  double energy_j = 0.0;
  double makespan_s = 0.0;
  std::uint64_t net_bytes = 0;
  std::uint64_t disk_bytes = 0;
  double net_byte_fraction = 0.0;
  std::uint64_t server_queue_waits = 0;
  double server_queue_wait_s = 0.0;
  std::uint64_t server_max_depth = 0;
  std::uint64_t reserved_deferrals = 0;
  std::uint64_t medium_transfers = 0;
  std::uint64_t contended_transfers = 0;
  double mean_share = 1.0;
  struct ClientRow {
    double link_quality = 1.0;
    double battery_initial = 1.0;
    double battery_final = 1.0;
    double energy_j = 0.0;
    std::uint64_t net_bytes = 0;
    std::uint64_t disk_bytes = 0;
    std::uint64_t queue_waits = 0;
    double queue_wait_s = 0.0;
  };
  std::vector<ClientRow> clients;

  bool operator==(const CellRecord& o) const {
    if (energy_j != o.energy_j || makespan_s != o.makespan_s ||
        net_bytes != o.net_bytes || disk_bytes != o.disk_bytes ||
        server_queue_waits != o.server_queue_waits ||
        server_queue_wait_s != o.server_queue_wait_s ||
        clients.size() != o.clients.size()) {
      return false;
    }
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if (clients[i].energy_j != o.clients[i].energy_j ||
          clients[i].net_bytes != o.clients[i].net_bytes ||
          clients[i].disk_bytes != o.clients[i].disk_bytes ||
          clients[i].battery_final != o.clients[i].battery_final) {
        return false;
      }
    }
    return true;
  }
};

CellRecord summarize(const Cell& cell, const medium::MultiClientResult& r) {
  CellRecord rec;
  rec.cell = cell;
  for (std::size_t i = 0; i < r.clients.size(); ++i) {
    const sim::SimResult& c = r.clients[i];
    rec.energy_j += c.total_energy().value();
    rec.makespan_s = std::max(rec.makespan_s, c.makespan.value());
    rec.net_bytes += c.net_bytes.value();
    rec.disk_bytes += c.disk_bytes.value();
    CellRecord::ClientRow row;
    row.link_quality = 1.0 - 0.05 * static_cast<double>(i % 4);
    row.battery_initial =
        initial_battery(static_cast<int>(i), cell.clients);
    row.battery_final = r.battery_final[i];
    row.energy_j = c.total_energy().value();
    row.net_bytes = c.net_bytes.value();
    row.disk_bytes = c.disk_bytes.value();
    row.queue_waits = c.wnic_counters.server_queue_waits;
    row.queue_wait_s = c.wnic_counters.server_queue_wait.value();
    rec.clients.push_back(std::move(row));
  }
  const double total_bytes =
      static_cast<double>(rec.net_bytes + rec.disk_bytes);
  rec.net_byte_fraction =
      total_bytes > 0.0 ? static_cast<double>(rec.net_bytes) / total_bytes
                        : 0.0;
  rec.server_queue_waits = r.server.queue_waits;
  rec.server_queue_wait_s = r.server.queue_wait.value();
  rec.server_max_depth = r.server.max_depth;
  rec.reserved_deferrals = r.server.reserved_deferrals;
  rec.medium_transfers = r.medium.transfers;
  rec.contended_transfers = r.medium.contended_transfers;
  rec.mean_share = r.medium.mean_share();
  return rec;
}

/// The "contended" reference point: the smallest N >= 4 that ran.
int pick_n_big(const std::vector<int>& clients_axis) {
  int n_big = 0;
  for (const int n : clients_axis) {
    if (n >= 4 && (n_big == 0 || n < n_big)) n_big = n;
  }
  return n_big;
}

void write_json(std::ostream& os, const std::vector<CellRecord>& records,
                const std::vector<int>& clients_axis, std::uint64_t seed,
                const SoloBaseline* ff_baseline) {
  os << "{\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"server\": {\"capacity\": 2, \"reserved_slots\": 1, "
        "\"low_battery_threshold\": 0.3},\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CellRecord& r = records[i];
    os << "    {\"clients\": " << r.cell.clients << ", \"admission\": \""
       << r.cell.admission << "\", \"policy\": \"" << r.cell.policy << "\",\n"
       << "     \"energy_j\": " << r.energy_j
       << ", \"makespan_s\": " << r.makespan_s
       << ", \"net_bytes\": " << r.net_bytes
       << ", \"disk_bytes\": " << r.disk_bytes
       << ", \"net_byte_fraction\": " << r.net_byte_fraction << ",\n"
       << "     \"server\": {\"queue_waits\": " << r.server_queue_waits
       << ", \"queue_wait_s\": " << r.server_queue_wait_s
       << ", \"max_depth\": " << r.server_max_depth
       << ", \"reserved_deferrals\": " << r.reserved_deferrals << "},\n"
       << "     \"medium\": {\"transfers\": " << r.medium_transfers
       << ", \"contended_transfers\": " << r.contended_transfers
       << ", \"mean_share\": " << r.mean_share << "},\n"
       << "     \"clients_detail\": [\n";
    for (std::size_t c = 0; c < r.clients.size(); ++c) {
      const auto& row = r.clients[c];
      os << "       {\"client\": " << c << ", \"link_quality\": "
         << row.link_quality << ", \"battery_initial\": "
         << row.battery_initial << ", \"battery_final\": "
         << row.battery_final << ", \"energy_j\": " << row.energy_j
         << ", \"net_bytes\": " << row.net_bytes << ", \"disk_bytes\": "
         << row.disk_bytes << ", \"queue_waits\": " << row.queue_waits
         << ", \"queue_wait_s\": " << row.queue_wait_s << "}"
         << (c + 1 < r.clients.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  // Headline comparisons (see the file comment). Keyed lookups so the
  // summary survives axis subsets: entries are omitted when their cells
  // did not run.
  const auto find = [&](int n, const std::string& admission,
                        const std::string& policy) -> const CellRecord* {
    for (const CellRecord& r : records) {
      if (r.cell.clients == n && r.cell.admission == admission &&
          r.cell.policy == policy) {
        return &r;
      }
    }
    return nullptr;
  };
  const int n_big = pick_n_big(clients_axis);
  os << "  \"summary\": {";
  bool first = true;
  const auto emit = [&](const char* key, double v) {
    os << (first ? "\n" : ",\n") << "    \"" << key << "\": " << v;
    first = false;
  };
  const CellRecord* ff1 = find(1, "fifo", "flexfetch");
  const CellRecord* ffn = n_big > 0 ? find(n_big, "fifo", "flexfetch") : nullptr;
  if (ff1 != nullptr && ffn != nullptr) {
    emit("flexfetch_net_fraction_n1", ff1->net_byte_fraction);
    emit("flexfetch_net_fraction_contended", ffn->net_byte_fraction);
  }
  // The shift is measured against the same client mix run client-by-client
  // on private channels (see run_solo_baseline) — not against the N=1
  // cell, whose single-scenario byte mix is not comparable.
  if (ffn != nullptr && ff_baseline != nullptr) {
    emit("flexfetch_net_fraction_solo", ff_baseline->net_fraction());
    emit("flexfetch_split_shift",
         ff_baseline->net_fraction() - ffn->net_byte_fraction);
  }
  const CellRecord* fifo_big =
      n_big > 0 ? find(n_big, "fifo", "wnic-only") : nullptr;
  const CellRecord* batt_big =
      n_big > 0 ? find(n_big, "battery", "wnic-only") : nullptr;
  if (fifo_big != nullptr && batt_big != nullptr &&
      !fifo_big->clients.empty() && !batt_big->clients.empty()) {
    emit("low_battery_client_energy_fifo_j", fifo_big->clients[0].energy_j);
    emit("low_battery_client_energy_battery_j",
         batt_big->clients[0].energy_j);
    emit("battery_aware_savings_j", fifo_big->clients[0].energy_j -
                                        batt_big->clients[0].energy_j);
  }
  os << (first ? "" : "\n  ") << "}\n";
  os << "}\n";
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_contention: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  int jobs = 0;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_contention.json";
  std::string clients_csv = "1,2,4,8,16";
  std::string policies_csv = "flexfetch,wnic-only";
  std::string admissions_csv = "fifo,battery";
  bench::ParsedFlags flags;
  flags.add("jobs", &jobs, "N");
  flags.add("clients", &clients_csv, "1,2,4");
  flags.add("policies", &policies_csv, "a,b");
  flags.add("admissions", &admissions_csv, "fifo,battery");
  flags.add("seed", &seed, "S");
  flags.add("out", &out_path, "FILE");
  flags.parse(argc, argv);
  jobs = sim::resolve_jobs(jobs);

  std::vector<int> clients_axis;
  int n_max = 0;
  for (const std::string& s : split_csv(clients_csv)) {
    const int n = std::atoi(s.c_str());
    if (n <= 0) {
      std::fprintf(stderr, "bad --clients entry '%s'\n", s.c_str());
      return 2;
    }
    clients_axis.push_back(n);
    n_max = std::max(n_max, n);
  }
  const std::vector<std::string> policy_names = split_csv(policies_csv);
  const std::vector<std::string> admissions = split_csv(admissions_csv);

  // One read-only bundle per client slot, shared by every cell: client i
  // always replays scenario i mod 5 seeded with seed + i, so a cell's
  // inputs depend only on (N, admission, policy) and the base seed.
  using Builder = workloads::ScenarioBundle (*)(std::uint64_t);
  const Builder builders[] = {
      workloads::scenario_grep_make, workloads::scenario_mplayer,
      workloads::scenario_thunderbird, workloads::scenario_forced_spinup,
      workloads::scenario_stale_acroread};
  std::vector<workloads::ScenarioBundle> bundles;
  bundles.reserve(static_cast<std::size_t>(n_max));
  for (int i = 0; i < n_max; ++i) {
    bundles.push_back(builders[i % 5](seed + static_cast<std::uint64_t>(i)));
  }

  std::vector<Cell> cells;
  for (const int n : clients_axis) {
    for (const std::string& adm : admissions) {
      for (const std::string& pol : policy_names) {
        cells.push_back(Cell{n, adm, pol});
      }
    }
  }
  std::printf("contention grid: %zu N-points x %zu admissions x %zu policies "
              "= %zu cells, jobs=%d\n",
              clients_axis.size(), admissions.size(), policy_names.size(),
              cells.size(), jobs);

  // Serial reference pass (also the only pass when jobs == 1 — the
  // bench_sweep serial-fallback convention).
  std::vector<CellRecord> records(cells.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    records[i] = summarize(cells[i], run_contention_cell(cells[i], bundles));
  }
  const double serial_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("serial  (jobs=1): %.2f s\n", serial_wall);

  if (jobs > 1) {
    std::vector<CellRecord> parallel(cells.size());
    const auto t1 = std::chrono::steady_clock::now();
    {
      ThreadPool pool(static_cast<unsigned>(jobs));
      parallel_for(pool, cells.size(), [&](std::size_t i) {
        parallel[i] =
            summarize(cells[i], run_contention_cell(cells[i], bundles));
      });
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    std::printf("parallel (jobs=%d): %.2f s\n", jobs, wall);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!(records[i] == parallel[i])) {
        ++mismatches;
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at cell %zu (N=%d %s/%s)\n", i,
                     cells[i].clients, cells[i].admission.c_str(),
                     cells[i].policy.c_str());
      }
    }
    if (mismatches > 0) return 1;
    std::printf("determinism: parallel cells identical to serial baseline "
                "(%zu cells)\n",
                cells.size());
  } else {
    std::printf("serial fallback: 1 effective worker, single pass only\n");
  }

  for (const CellRecord& r : records) {
    std::printf("N=%-3d %-8s %-16s energy=%10.1f J  net%%=%5.1f  "
                "queue_waits=%llu  wait=%.2f s\n",
                r.cell.clients, r.cell.admission.c_str(),
                r.cell.policy.c_str(), r.energy_j,
                100.0 * r.net_byte_fraction,
                static_cast<unsigned long long>(r.server_queue_waits),
                r.server_queue_wait_s);
  }

  // Uncontended reference for the split-shift summary: the n_big client
  // mix, each client alone on a private channel. Only meaningful (and only
  // paid for) when the contended flexfetch cell actually ran.
  SoloBaseline ff_baseline;
  bool have_baseline = false;
  const int n_big = pick_n_big(clients_axis);
  for (const Cell& c : cells) {
    if (c.clients == n_big && c.admission == "fifo" &&
        c.policy == "flexfetch") {
      ff_baseline = run_solo_baseline(n_big, "flexfetch", bundles);
      have_baseline = true;
      std::printf(
          "solo baseline (N=%d mix, private channels): net%%=%5.1f "
          "energy=%8.1f J\n",
          n_big, 100.0 * ff_baseline.net_fraction(), ff_baseline.energy_j);
      break;
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  write_json(os, records, clients_axis, seed,
             have_baseline ? &ff_baseline : nullptr);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
