#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "policies/factory.hpp"

namespace flexfetch::bench {

sim::SimResult run_once(const workloads::ScenarioBundle& scenario,
                        const std::string& policy_name,
                        const device::WnicParams& wnic) {
  sim::SweepCell cell;
  cell.scenario = &scenario;
  cell.policy = policy_name;
  cell.wnic = wnic;
  return sim::run_cell(cell);
}

void print_table_header(const std::string& axis,
                        const std::vector<std::string>& columns) {
  std::printf("%-14s", axis.c_str());
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_table_row(double axis_value, const std::vector<double>& cells) {
  std::printf("%-14.2f", axis_value);
  for (const double v : cells) std::printf(" %14.1f", v);
  std::printf("\n");
}

int parse_jobs_flag(int& argc, char** argv) {
  int jobs = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs;
}

namespace {

std::vector<std::string> display_names(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& n : names) {
    if (n == "flexfetch") out.push_back("FlexFetch");
    else if (n == "flexfetch-static") out.push_back("FlexFetch-static");
    else if (n == "bluefs") out.push_back("BlueFS");
    else if (n == "disk-only") out.push_back("Disk-only");
    else if (n == "wnic-only") out.push_back("WNIC-only");
    else if (n == "oracle") out.push_back("Oracle");
    else out.push_back(n);
  }
  return out;
}

}  // namespace

std::vector<sim::SweepCell> figure_cells(
    const workloads::ScenarioBundle& scenario, const SweepSpec& spec) {
  const device::WnicParams base = device::WnicParams::cisco_aironet350();
  std::vector<sim::SweepCell> cells;
  cells.reserve((spec.latencies_ms.size() + spec.bandwidths_mbps.size()) *
                spec.policies.size());
  for (const double ms : spec.latencies_ms) {
    for (const auto& p : spec.policies) {
      sim::SweepCell cell;
      cell.scenario = &scenario;
      cell.policy = p;
      cell.wnic = base.with_latency(units::ms(ms));
      cell.axis = "latency_ms";
      cell.axis_value = ms;
      cells.push_back(std::move(cell));
    }
  }
  for (const double mbps : spec.bandwidths_mbps) {
    for (const auto& p : spec.policies) {
      sim::SweepCell cell;
      cell.scenario = &scenario;
      cell.policy = p;
      cell.wnic = base.with_bandwidth_mbps(mbps);
      cell.axis = "bandwidth_mbps";
      cell.axis_value = mbps;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_figure(const std::string& figure_label,
                  const workloads::ScenarioBundle& scenario,
                  const SweepSpec& spec) {
  const auto cells = figure_cells(scenario, spec);
  const auto results = sim::run_sweep(cells, {.jobs = spec.jobs});

  std::printf("=== %s : %s ===\n", figure_label.c_str(), scenario.name.c_str());
  std::printf("(energy in joules; rows are the sweep axis)\n\n");

  // Results arrive in the same row-major (axis point, policy) order the
  // cells were built in; walk them back out as table rows.
  std::size_t i = 0;
  std::printf("(a) WNIC latency sweep at 11 Mbps\n");
  print_table_header("latency[ms]", display_names(spec.policies));
  for (const double ms : spec.latencies_ms) {
    std::vector<double> row;
    row.reserve(spec.policies.size());
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      row.push_back(results[i++].total_energy());
    }
    print_table_row(ms, row);
  }

  std::printf("\n(b) WNIC bandwidth sweep at 1 ms latency\n");
  print_table_header("bw[Mbps]", display_names(spec.policies));
  for (const double mbps : spec.bandwidths_mbps) {
    std::vector<double> row;
    row.reserve(spec.policies.size());
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      row.push_back(results[i++].total_energy());
    }
    print_table_row(mbps, row);
  }
  std::printf("\n");
}

}  // namespace flexfetch::bench
