#include "harness.hpp"

#include <cstdio>

#include "policies/factory.hpp"

namespace flexfetch::bench {

sim::SimResult run_once(const workloads::ScenarioBundle& scenario,
                        const std::string& policy_name,
                        const device::WnicParams& wnic) {
  sim::SimConfig config;
  config.wnic = wnic;
  auto policy = policies::make_policy(policy_name, scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  return simulator.run();
}

void print_table_header(const std::string& axis,
                        const std::vector<std::string>& columns) {
  std::printf("%-14s", axis.c_str());
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_table_row(double axis_value, const std::vector<double>& cells) {
  std::printf("%-14.2f", axis_value);
  for (const double v : cells) std::printf(" %14.1f", v);
  std::printf("\n");
}

namespace {

std::vector<std::string> display_names(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& n : names) {
    if (n == "flexfetch") out.push_back("FlexFetch");
    else if (n == "flexfetch-static") out.push_back("FlexFetch-static");
    else if (n == "bluefs") out.push_back("BlueFS");
    else if (n == "disk-only") out.push_back("Disk-only");
    else if (n == "wnic-only") out.push_back("WNIC-only");
    else if (n == "oracle") out.push_back("Oracle");
    else out.push_back(n);
  }
  return out;
}

}  // namespace

void print_figure(const std::string& figure_label,
                  const workloads::ScenarioBundle& scenario,
                  const SweepSpec& spec) {
  const device::WnicParams base = device::WnicParams::cisco_aironet350();

  std::printf("=== %s : %s ===\n", figure_label.c_str(), scenario.name.c_str());
  std::printf("(energy in joules; rows are the sweep axis)\n\n");

  std::printf("(a) WNIC latency sweep at 11 Mbps\n");
  print_table_header("latency[ms]", display_names(spec.policies));
  for (const double ms : spec.latencies_ms) {
    std::vector<double> cells;
    cells.reserve(spec.policies.size());
    for (const auto& p : spec.policies) {
      cells.push_back(
          run_once(scenario, p, base.with_latency(units::ms(ms)))
              .total_energy());
    }
    print_table_row(ms, cells);
  }

  std::printf("\n(b) WNIC bandwidth sweep at 1 ms latency\n");
  print_table_header("bw[Mbps]", display_names(spec.policies));
  for (const double mbps : spec.bandwidths_mbps) {
    std::vector<double> cells;
    cells.reserve(spec.policies.size());
    for (const auto& p : spec.policies) {
      cells.push_back(run_once(scenario, p, base.with_bandwidth_mbps(mbps))
                          .total_energy());
    }
    print_table_row(mbps, cells);
  }
  std::printf("\n");
}

}  // namespace flexfetch::bench
