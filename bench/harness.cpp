#include "harness.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>

#include "faults/schedule.hpp"
#include "policies/factory.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"

namespace flexfetch::bench {

sim::SimResult run_once(const workloads::ScenarioBundle& scenario,
                        const std::string& policy_name,
                        const device::WnicParams& wnic) {
  sim::SweepCell cell;
  cell.scenario = &scenario;
  cell.policy = policy_name;
  cell.wnic = wnic;
  return sim::run_cell(cell);
}

void print_table_header(const std::string& axis,
                        const std::vector<std::string>& columns) {
  std::printf("%-14s", axis.c_str());
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_table_row(double axis_value, const std::vector<double>& cells) {
  std::printf("%-14.2f", axis_value);
  for (const double v : cells) std::printf(" %14.1f", v);
  std::printf("\n");
}

void ParsedFlags::add(std::string name, bool* target) {
  flags_.push_back(
      Flag{.name = "--" + std::move(name), .value_name = "", .bool_target = target});
}

void ParsedFlags::add(std::string name, int* target, std::string value_name) {
  flags_.push_back(Flag{.name = "--" + std::move(name),
                        .value_name = std::move(value_name),
                        .int_target = target});
}

void ParsedFlags::add(std::string name, std::uint64_t* target,
                      std::string value_name) {
  flags_.push_back(Flag{.name = "--" + std::move(name),
                        .value_name = std::move(value_name),
                        .u64_target = target});
}

void ParsedFlags::add(std::string name, std::string* target,
                      std::string value_name) {
  flags_.push_back(Flag{.name = "--" + std::move(name),
                        .value_name = std::move(value_name),
                        .string_target = target});
}

void ParsedFlags::print_flag_list(std::FILE* to) const {
  std::fprintf(to, "accepted flags:\n");
  for (const Flag& f : flags_) {
    if (f.value_name.empty()) {
      std::fprintf(to, "  %s\n", f.name.c_str());
    } else {
      std::fprintf(to, "  %s %s   (also %s=%s)\n", f.name.c_str(),
                   f.value_name.c_str(), f.name.c_str(),
                   f.value_name.c_str());
    }
  }
  std::fprintf(to, "  --help, -h\n");
  std::fprintf(to, "  --benchmark_*   (passed through to google-benchmark)\n");
}

void ParsedFlags::usage_and_exit(const char* argv0,
                                 const char* offending) const {
  std::fprintf(stderr, "%s: unknown argument '%s'\n", argv0, offending);
  print_flag_list(stderr);
  std::exit(2);
}

void ParsedFlags::parse(int& argc, char** argv) const {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf("usage: %s [flags]\n", argv[0]);
      print_flag_list(stdout);
      std::exit(0);
    }
    const Flag* matched = nullptr;
    const char* inline_value = nullptr;
    for (const Flag& f : flags_) {
      if (std::strcmp(a, f.name.c_str()) == 0) {
        matched = &f;
        break;
      }
      // `--flag=VALUE` spelling, only meaningful for value flags.
      if (!f.value_name.empty() &&
          std::strncmp(a, f.name.c_str(), f.name.size()) == 0 &&
          a[f.name.size()] == '=') {
        matched = &f;
        inline_value = a + f.name.size() + 1;
        break;
      }
    }
    if (matched == nullptr) {
      if (std::strncmp(a, "--benchmark_", 12) == 0) {
        argv[out++] = argv[i];  // Left for google-benchmark to parse.
        continue;
      }
      usage_and_exit(argv[0], a);
    }
    if (matched->bool_target != nullptr) {
      *matched->bool_target = true;
      continue;
    }
    const char* value = inline_value;
    if (value == nullptr) {
      if (i + 1 >= argc) usage_and_exit(argv[0], a);
      value = argv[++i];
    }
    if (matched->int_target != nullptr) {
      *matched->int_target = std::atoi(value);
    } else if (matched->u64_target != nullptr) {
      *matched->u64_target = std::strtoull(value, nullptr, 10);
    } else {
      *matched->string_target = value;
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

HarnessOptions parse_harness_flags(int& argc, char** argv,
                                   bool telemetry_flags) {
  HarnessOptions opts;
  ParsedFlags flags;
  flags.add("jobs", &opts.jobs, "N");
  flags.add("fault-seed", &opts.fault_seed, "S");
  if (telemetry_flags) {
    flags.add("metrics", &opts.metrics);
    flags.add("trace-out", &opts.trace_out, "FILE");
  }
  flags.parse(argc, argv);
  return opts;
}

namespace {

std::vector<std::string> display_names(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& n : names) {
    if (n == "flexfetch") out.push_back("FlexFetch");
    else if (n == "flexfetch-static") out.push_back("FlexFetch-static");
    else if (n == "bluefs") out.push_back("BlueFS");
    else if (n == "disk-only") out.push_back("Disk-only");
    else if (n == "wnic-only") out.push_back("WNIC-only");
    else if (n == "oracle") out.push_back("Oracle");
    else out.push_back(n);
  }
  return out;
}

/// Merges each policy's per-cell metrics and prints one block per policy.
void print_metrics_summary(const SweepSpec& spec,
                           const std::vector<sim::SweepCell>& cells,
                           const std::vector<sim::SimResult>& results) {
  std::printf("telemetry metrics, merged per policy (%zu cells each; "
              "counters sum, gauges keep the last cell's value)\n",
              spec.policies.empty() ? 0 : cells.size() / spec.policies.size());
  for (const auto& p : spec.policies) {
    telemetry::MetricsRegistry merged;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].policy == p) merged.merge(results[i].metrics);
    }
    std::printf("[%s]\n", p.c_str());
    for (const auto& [name, metric] : merged.items()) {
      std::printf("  %-32s %.6g\n", name.c_str(), metric.value);
    }
  }
  std::printf("\n");
}

}  // namespace

std::vector<sim::SweepCell> figure_cells(
    const workloads::ScenarioBundle& scenario, const SweepSpec& spec) {
  const device::WnicParams base = device::WnicParams::cisco_aironet350();
  // One schedule per figure, shared by every cell: each cell's SimConfig
  // copies it, so the grid stays embarrassingly parallel.
  faults::FaultSchedule fault_schedule;
  if (spec.fault_seed != 0) {
    fault_schedule = faults::generate_schedule(spec.fault_seed);
  }
  std::vector<sim::SweepCell> cells;
  cells.reserve((spec.latencies_ms.size() + spec.bandwidths_mbps.size()) *
                spec.policies.size());
  for (const double ms : spec.latencies_ms) {
    for (const auto& p : spec.policies) {
      sim::SweepCell cell;
      cell.scenario = &scenario;
      cell.policy = p;
      cell.wnic = base.with_latency(units::ms(ms));
      cell.axis = "latency_ms";
      cell.axis_value = ms;
      cell.config.faults = fault_schedule;
      cells.push_back(std::move(cell));
    }
  }
  for (const double mbps : spec.bandwidths_mbps) {
    for (const auto& p : spec.policies) {
      sim::SweepCell cell;
      cell.scenario = &scenario;
      cell.policy = p;
      cell.wnic = base.with_bandwidth_mbps(mbps);
      cell.axis = "bandwidth_mbps";
      cell.axis_value = mbps;
      cell.config.faults = fault_schedule;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_figure(const std::string& figure_label,
                  const workloads::ScenarioBundle& scenario,
                  const SweepSpec& spec) {
  auto cells = figure_cells(scenario, spec);
  if (spec.metrics || !spec.trace_out.empty()) {
    for (auto& cell : cells) {
      // Metrics-only mode (the default ring_capacity 0): exact counters
      // and histograms, no events admitted or constructed.
      cell.config.telemetry.enabled = true;
    }
    if (!spec.trace_out.empty() && !cells.empty()) {
      // Event capture is opt-in per cell.
      cells[0].config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
    }
  }
  const auto results = sim::run_sweep(cells, {.jobs = spec.jobs});

  std::printf("=== %s : %s ===\n", figure_label.c_str(), scenario.name.c_str());
  std::printf("(energy in joules; rows are the sweep axis)\n\n");

  // Results arrive in the same row-major (axis point, policy) order the
  // cells were built in; walk them back out as table rows.
  std::size_t i = 0;
  std::printf("(a) WNIC latency sweep at 11 Mbps\n");
  print_table_header("latency[ms]", display_names(spec.policies));
  for (const double ms : spec.latencies_ms) {
    std::vector<double> row;
    row.reserve(spec.policies.size());
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      row.push_back(results[i++].total_energy().value());
    }
    print_table_row(ms, row);
  }

  std::printf("\n(b) WNIC bandwidth sweep at 1 ms latency\n");
  print_table_header("bw[Mbps]", display_names(spec.policies));
  for (const double mbps : spec.bandwidths_mbps) {
    std::vector<double> row;
    row.reserve(spec.policies.size());
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      row.push_back(results[i++].total_energy().value());
    }
    print_table_row(mbps, row);
  }
  std::printf("\n");

  if (spec.metrics) print_metrics_summary(spec, cells, results);
  if (!spec.trace_out.empty() && !results.empty()) {
    std::ofstream os(spec.trace_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   spec.trace_out.c_str());
    } else {
      telemetry::write_chrome_trace(
          os, std::span<const telemetry::TraceEvent>(results[0].trace_events),
          results[0].trace_events_dropped, &results[0].metrics);
      std::printf("wrote Chrome trace of cell 0 (%s / %s) to %s\n",
                  scenario.name.c_str(), cells[0].policy.c_str(),
                  spec.trace_out.c_str());
    }
  }
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace flexfetch::bench
