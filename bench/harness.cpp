#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>

#include "policies/factory.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"

namespace flexfetch::bench {

sim::SimResult run_once(const workloads::ScenarioBundle& scenario,
                        const std::string& policy_name,
                        const device::WnicParams& wnic) {
  sim::SweepCell cell;
  cell.scenario = &scenario;
  cell.policy = policy_name;
  cell.wnic = wnic;
  return sim::run_cell(cell);
}

void print_table_header(const std::string& axis,
                        const std::vector<std::string>& columns) {
  std::printf("%-14s", axis.c_str());
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

void print_table_row(double axis_value, const std::vector<double>& cells) {
  std::printf("%-14.2f", axis_value);
  for (const double v : cells) std::printf(" %14.1f", v);
  std::printf("\n");
}

HarnessOptions parse_harness_flags(int& argc, char** argv,
                                   bool telemetry_flags) {
  HarnessOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(a + 7);
    } else if (telemetry_flags && std::strcmp(a, "--metrics") == 0) {
      opts.metrics = true;
    } else if (telemetry_flags && std::strcmp(a, "--trace-out") == 0 &&
               i + 1 < argc) {
      opts.trace_out = argv[++i];
    } else if (telemetry_flags && std::strncmp(a, "--trace-out=", 12) == 0) {
      opts.trace_out = a + 12;
    } else if (std::strncmp(a, "--benchmark_", 12) == 0) {
      argv[out++] = argv[i];  // Left for google-benchmark to parse.
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], a);
      std::fprintf(stderr, "usage: %s [--jobs N]%s [--benchmark_*...]\n",
                   argv[0],
                   telemetry_flags ? " [--metrics] [--trace-out FILE]" : "");
      std::exit(2);
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return opts;
}

namespace {

std::vector<std::string> display_names(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const auto& n : names) {
    if (n == "flexfetch") out.push_back("FlexFetch");
    else if (n == "flexfetch-static") out.push_back("FlexFetch-static");
    else if (n == "bluefs") out.push_back("BlueFS");
    else if (n == "disk-only") out.push_back("Disk-only");
    else if (n == "wnic-only") out.push_back("WNIC-only");
    else if (n == "oracle") out.push_back("Oracle");
    else out.push_back(n);
  }
  return out;
}

/// Merges each policy's per-cell metrics and prints one block per policy.
void print_metrics_summary(const SweepSpec& spec,
                           const std::vector<sim::SweepCell>& cells,
                           const std::vector<sim::SimResult>& results) {
  std::printf("telemetry metrics, merged per policy (%zu cells each; "
              "counters sum, gauges keep the last cell's value)\n",
              spec.policies.empty() ? 0 : cells.size() / spec.policies.size());
  for (const auto& p : spec.policies) {
    telemetry::MetricsRegistry merged;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].policy == p) merged.merge(results[i].metrics);
    }
    std::printf("[%s]\n", p.c_str());
    for (const auto& [name, metric] : merged.items()) {
      std::printf("  %-32s %.6g\n", name.c_str(), metric.value);
    }
  }
  std::printf("\n");
}

}  // namespace

std::vector<sim::SweepCell> figure_cells(
    const workloads::ScenarioBundle& scenario, const SweepSpec& spec) {
  const device::WnicParams base = device::WnicParams::cisco_aironet350();
  std::vector<sim::SweepCell> cells;
  cells.reserve((spec.latencies_ms.size() + spec.bandwidths_mbps.size()) *
                spec.policies.size());
  for (const double ms : spec.latencies_ms) {
    for (const auto& p : spec.policies) {
      sim::SweepCell cell;
      cell.scenario = &scenario;
      cell.policy = p;
      cell.wnic = base.with_latency(units::ms(ms));
      cell.axis = "latency_ms";
      cell.axis_value = ms;
      cells.push_back(std::move(cell));
    }
  }
  for (const double mbps : spec.bandwidths_mbps) {
    for (const auto& p : spec.policies) {
      sim::SweepCell cell;
      cell.scenario = &scenario;
      cell.policy = p;
      cell.wnic = base.with_bandwidth_mbps(mbps);
      cell.axis = "bandwidth_mbps";
      cell.axis_value = mbps;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_figure(const std::string& figure_label,
                  const workloads::ScenarioBundle& scenario,
                  const SweepSpec& spec) {
  auto cells = figure_cells(scenario, spec);
  if (spec.metrics || !spec.trace_out.empty()) {
    for (auto& cell : cells) {
      // Metrics-only mode: exact counters, no per-cell event buffers.
      cell.config.telemetry.enabled = true;
      cell.config.telemetry.ring_capacity = 0;
    }
    if (!spec.trace_out.empty() && !cells.empty()) {
      cells[0].config.telemetry.ring_capacity =
          telemetry::TelemetryConfig{}.ring_capacity;
    }
  }
  const auto results = sim::run_sweep(cells, {.jobs = spec.jobs});

  std::printf("=== %s : %s ===\n", figure_label.c_str(), scenario.name.c_str());
  std::printf("(energy in joules; rows are the sweep axis)\n\n");

  // Results arrive in the same row-major (axis point, policy) order the
  // cells were built in; walk them back out as table rows.
  std::size_t i = 0;
  std::printf("(a) WNIC latency sweep at 11 Mbps\n");
  print_table_header("latency[ms]", display_names(spec.policies));
  for (const double ms : spec.latencies_ms) {
    std::vector<double> row;
    row.reserve(spec.policies.size());
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      row.push_back(results[i++].total_energy());
    }
    print_table_row(ms, row);
  }

  std::printf("\n(b) WNIC bandwidth sweep at 1 ms latency\n");
  print_table_header("bw[Mbps]", display_names(spec.policies));
  for (const double mbps : spec.bandwidths_mbps) {
    std::vector<double> row;
    row.reserve(spec.policies.size());
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      row.push_back(results[i++].total_energy());
    }
    print_table_row(mbps, row);
  }
  std::printf("\n");

  if (spec.metrics) print_metrics_summary(spec, cells, results);
  if (!spec.trace_out.empty() && !results.empty()) {
    std::ofstream os(spec.trace_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   spec.trace_out.c_str());
    } else {
      telemetry::write_chrome_trace(
          os, std::span<const telemetry::TraceEvent>(results[0].trace_events),
          results[0].trace_events_dropped, &results[0].metrics);
      std::printf("wrote Chrome trace of cell 0 (%s / %s) to %s\n",
                  scenario.name.c_str(), cells[0].policy.c_str(),
                  spec.trace_out.c_str());
    }
  }
}

}  // namespace flexfetch::bench
