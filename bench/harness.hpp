// Shared harness for the per-figure benchmark binaries: runs policy sweeps
// over WNIC latency and bandwidth and prints the paper-style series. The
// grid is fanned out across worker threads by the sweep engine
// (sim/sweep.hpp); results are deterministic and printed in grid order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch::bench {

/// Sweep axes used throughout the paper's evaluation (Section 3.3): WNIC
/// latency at fixed 11 Mbps, and the 802.11b bandwidths at fixed 1 ms.
struct SweepSpec {
  std::vector<double> latencies_ms = {0.0,  1.0,  3.0,  5.0,  7.0,  9.0, 12.0,
                                      15.0, 20.0, 30.0, 50.0, 70.0, 100.0};
  std::vector<double> bandwidths_mbps = {1.0, 2.0, 5.5, 11.0};
  /// Policy factory names (see policies::make_policy).
  std::vector<std::string> policies;
  /// Worker threads; <= 0 resolves FF_JOBS then hardware_concurrency().
  int jobs = 0;
  /// Collect per-cell telemetry metrics (metrics-only mode, no event
  /// buffers) and print a merged per-policy summary after the figure.
  bool metrics = false;
  /// If non-empty, record full events for the figure's first cell and
  /// write them there as Chrome trace_event JSON (chrome://tracing).
  std::string trace_out;
  /// Non-zero: inject the deterministic fault schedule generated from this
  /// seed (WNIC outages/degradations + disk spin-up stalls) into every
  /// cell. Zero (default) leaves the grid fault-free.
  std::uint64_t fault_seed = 0;
};

/// Runs one scenario under one policy with the given WNIC parameters.
sim::SimResult run_once(const workloads::ScenarioBundle& scenario,
                        const std::string& policy_name,
                        const device::WnicParams& wnic);

/// Builds the figure's (a) latency-panel and (b) bandwidth-panel cells, in
/// the row-major order print_figure prints them.
std::vector<sim::SweepCell> figure_cells(
    const workloads::ScenarioBundle& scenario, const SweepSpec& spec);

/// Prints "(a) energy vs latency" and "(b) energy vs bandwidth" tables for
/// the scenario — the two panels of each figure in Section 3.3. Cells run
/// in parallel per `spec.jobs`.
void print_figure(const std::string& figure_label,
                  const workloads::ScenarioBundle& scenario,
                  const SweepSpec& spec);

/// Prints one header + one row per sweep point; helper for ablations.
void print_table_header(const std::string& axis,
                        const std::vector<std::string>& columns);
void print_table_row(double axis_value, const std::vector<double>& cells);

/// Declarative command-line flag table. Each bench binary registers the
/// flags it understands (`add`), then calls `parse` once: recognised flags
/// are stripped from argv, `--benchmark_*` flags are left in place for
/// google-benchmark, and anything else prints a generated usage message and
/// exits with status 2 — unknown flags are never silently ignored. Adding a
/// new flag (e.g. `--hotpath-out`) is one `add` call; spelling variants
/// (`--flag VALUE` and `--flag=VALUE`), the per-flag usage listing that an
/// unknown argument triggers, and `--help`/`-h` all come for free.
class ParsedFlags {
 public:
  /// Bare boolean flag: `--name` sets *target to true.
  void add(std::string name, bool* target);
  /// Integer flag: `--name N` or `--name=N`.
  void add(std::string name, int* target, std::string value_name);
  /// Unsigned 64-bit flag (seeds): `--name N` or `--name=N`.
  void add(std::string name, std::uint64_t* target, std::string value_name);
  /// String flag: `--name VALUE` or `--name=VALUE`.
  void add(std::string name, std::string* target, std::string value_name);

  /// Parses argv in place; on return argv holds only argv[0] and any
  /// `--benchmark_*` flags (argc updated to match).
  void parse(int& argc, char** argv) const;

 private:
  struct Flag {
    std::string name;           // Including the leading "--".
    std::string value_name;     // Empty for booleans.
    bool* bool_target = nullptr;
    int* int_target = nullptr;
    std::uint64_t* u64_target = nullptr;
    std::string* string_target = nullptr;
  };
  /// One line per registered flag, plus --help and the --benchmark_*
  /// pass-through.
  void print_flag_list(std::FILE* to) const;
  [[noreturn]] void usage_and_exit(const char* argv0,
                                   const char* offending) const;
  std::vector<Flag> flags_;
};

/// Peak resident set size of this process so far, in bytes (getrusage
/// ru_maxrss). Benches record it into their JSON artifacts so
/// memory-boundedness claims (--cells=off, fleet shards) are checkable
/// from the record. Lives in bench/, not src/: it is a host measurement,
/// like wall clocks.
std::uint64_t peak_rss_bytes();

/// Flags shared by the bench binaries, parsed by parse_harness_flags.
struct HarnessOptions {
  int jobs = 0;
  bool metrics = false;
  std::string trace_out;
  std::uint64_t fault_seed = 0;
};

/// Parses and strips the harness flags from argv via ParsedFlags:
///   --jobs N        sweep worker threads
///   --metrics       per-cell telemetry metrics + merged summary
///   --trace-out F   Chrome trace of the first sweep cell (telemetry_flags)
///   --fault-seed S  inject the fault schedule generated from seed S
/// Binaries without a telemetry surface pass telemetry_flags = false so
/// --metrics/--trace-out are rejected too.
HarnessOptions parse_harness_flags(int& argc, char** argv,
                                   bool telemetry_flags = true);

}  // namespace flexfetch::bench
