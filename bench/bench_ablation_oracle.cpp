// Ablation D — how close does FlexFetch, working from a one-run-old
// profile, get to an Oracle that sees the exact future burst structure?
// Reported for every Section 3.3 scenario alongside the fixed policies.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness.hpp"
#include "policies/factory.hpp"

using namespace flexfetch;

namespace {

void run_scenarios(int jobs) {
  std::printf("%-24s %12s %12s %12s %12s %10s\n", "scenario", "FlexFetch",
              "Oracle", "Disk-only", "WNIC-only", "FF/Oracle");
  const auto wnic = device::WnicParams::cisco_aironet350();
  const auto scenarios = workloads::all_scenarios(1);
  std::vector<const workloads::ScenarioBundle*> refs;
  for (const auto& s : scenarios) refs.push_back(&s);
  const auto cells = sim::make_grid(
      refs, {"flexfetch", "oracle", "disk-only", "wnic-only"}, {wnic});
  const auto results = sim::run_sweep(cells, {.jobs = jobs});
  for (std::size_t i = 0; i < results.size(); i += 4) {
    const double ff = results[i].total_energy().value();
    const double oracle = results[i + 1].total_energy().value();
    std::printf("%-24s %12.1f %12.1f %12.1f %12.1f %10.3f\n",
                cells[i].scenario->name.c_str(), ff, oracle,
                results[i + 2].total_energy().value(), results[i + 3].total_energy().value(),
                ff / oracle);
  }
  std::printf("\n");
}

void BM_OracleGrepMake(benchmark::State& state) {
  const auto scenario = workloads::scenario_grep_make(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "oracle",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_OracleGrepMake)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int jobs =
      bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false).jobs;
  std::printf("=== Ablation D: FlexFetch vs clairvoyant Oracle ===\n\n");
  run_scenarios(jobs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
