// Ablation D — how close does FlexFetch, working from a one-run-old
// profile, get to an Oracle that sees the exact future burst structure?
// Reported for every Section 3.3 scenario alongside the fixed policies.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness.hpp"
#include "policies/factory.hpp"

using namespace flexfetch;

namespace {

void run_scenarios() {
  std::printf("%-24s %12s %12s %12s %12s %10s\n", "scenario", "FlexFetch",
              "Oracle", "Disk-only", "WNIC-only", "FF/Oracle");
  const auto wnic = device::WnicParams::cisco_aironet350();
  for (const auto& scenario : workloads::all_scenarios(1)) {
    const double ff =
        bench::run_once(scenario, "flexfetch", wnic).total_energy();
    const double oracle =
        bench::run_once(scenario, "oracle", wnic).total_energy();
    const double disk =
        bench::run_once(scenario, "disk-only", wnic).total_energy();
    const double net =
        bench::run_once(scenario, "wnic-only", wnic).total_energy();
    std::printf("%-24s %12.1f %12.1f %12.1f %12.1f %10.3f\n",
                scenario.name.c_str(), ff, oracle, disk, net, ff / oracle);
  }
  std::printf("\n");
}

void BM_OracleGrepMake(benchmark::State& state) {
  const auto scenario = workloads::scenario_grep_make(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "oracle",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_OracleGrepMake)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation D: FlexFetch vs clairvoyant Oracle ===\n\n");
  run_scenarios();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
