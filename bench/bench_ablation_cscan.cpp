// Ablation E — the C-SCAN I/O scheduler vs FIFO dispatch, under the
// distance-dependent seek model. The paper's simulator "emulates ... the
// C-SCAN I/O request scheduling mechanism" (Section 3.1); this bench shows
// what the elevator buys on a seek-heavy workload: write-back batches of
// pages dirtied across many scattered files.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "harness.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

using namespace flexfetch;

namespace {

/// Scatter-writer: dirties pages across many files in shuffled order, then
/// idles so the background flusher writes everything back in one batch.
trace::Trace scatter_write_trace(std::size_t files, std::uint64_t seed) {
  Rng rng(seed);
  trace::TraceBuilder b("scatter");
  b.process(90, 90);
  std::vector<trace::Inode> order(files);
  for (std::size_t i = 0; i < files; ++i) order[i] = 50'000 + i;
  for (std::size_t i = files; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_int(0, i - 1)]);
  }
  for (const auto ino : order) {
    b.write(ino, Bytes{0}, 8 * kKiB);
    b.think(Seconds{0.002});
  }
  b.think(Seconds{45.0});          // Let the flusher drain the dirty set.
  b.read(99'999, Bytes{0}, Bytes{4096});  // Final marker read.
  return b.build();
}

sim::SimResult run(bool use_cscan, std::size_t files) {
  sim::SimConfig config;
  config.disk.seek_model = device::DiskParams::SeekModel::kDistance;
  config.use_cscan = use_cscan;
  policies::DiskOnlyPolicy policy;
  return sim::simulate(config, scatter_write_trace(files, 7), policy);
}

void print_comparison() {
  std::printf("%-8s %12s %12s %14s %14s %10s\n", "files", "order",
              "energy[J]", "seek-time[s]", "io-time[s]", "merges");
  for (const std::size_t files : {200u, 800u, 2000u}) {
    for (const bool cscan : {false, true}) {
      const auto r = run(cscan, files);
      std::printf("%-8zu %12s %12.1f %14.3f %14.3f %10llu\n", files,
                  cscan ? "C-SCAN" : "FIFO", r.total_energy().value(),
                  r.disk_counters.seek_time.value(), r.io_time.value(),
                  static_cast<unsigned long long>(r.scheduler_stats.merged));
    }
  }
  std::printf("\n");
}

void BM_ScatterFlushCScan(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(true, 800).total_energy());
  }
}
BENCHMARK(BM_ScatterFlushCScan)->Unit(benchmark::kMillisecond);

void BM_ScatterFlushFifo(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(false, 800).total_energy());
  }
}
BENCHMARK(BM_ScatterFlushFifo)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  std::printf("=== Ablation E: C-SCAN elevator vs FIFO dispatch ===\n");
  std::printf("(distance-dependent seek model; scattered write-back batch)\n\n");
  print_comparison();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
