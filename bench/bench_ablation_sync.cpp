// Ablation F — the cost of replica synchronization, which the paper's
// evaluation assumes away ("data sets ... are available on both local hard
// disk and remote server and synced", Section 3.1; Section 5 defers the
// study). With the hoard/sync substrate enabled, local writes must be
// shipped to the server over the WNIC: this bench quantifies the energy
// overhead across sync intervals on the write-heavy programming workload.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness.hpp"
#include "policies/factory.hpp"

using namespace flexfetch;

namespace {

sim::SimResult run(const workloads::ScenarioBundle& scenario,
                   const std::string& policy_name, double sync_interval) {
  sim::SimConfig config;
  if (sync_interval > 0) {
    config.enable_sync = true;
    config.sync.interval = Seconds{sync_interval};
  }
  auto policy = policies::make_policy(policy_name, scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  return simulator.run();
}

void print_sweep(const workloads::ScenarioBundle& scenario,
                 const std::string& policy_name) {
  std::printf("--- %s under %s ---\n", scenario.name.c_str(),
              policy_name.c_str());
  std::printf("%-14s %12s %12s %12s %10s %12s\n", "interval[s]", "energy[J]",
              "overhead[%]", "sync[MB]", "batches", "makespan[s]");
  const double base = run(scenario, policy_name, 0).total_energy().value();
  std::printf("%-14s %12.1f %12s %12s %10s %12s\n", "off", base, "-", "-",
              "-", "-");
  for (const double interval : {30.0, 120.0, 600.0}) {
    const auto r = run(scenario, policy_name, interval);
    std::printf("%-14.0f %12.1f %12.1f %12.2f %10llu %12.1f\n", interval,
                r.total_energy().value(),
                (r.total_energy().value() / base - 1.0) * 100.0,
                r.sync_bytes.as_double() / 1e6,
                static_cast<unsigned long long>(r.sync_batches),
                r.makespan.value());
  }
  std::printf("\n");
}

void BM_GrepMakeWithSync(benchmark::State& state) {
  const auto scenario = workloads::scenario_grep_make(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run(scenario, "flexfetch", 120.0).total_energy());
  }
}
BENCHMARK(BM_GrepMakeWithSync)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  std::printf("=== Ablation F: replica synchronization overhead ===\n\n");
  print_sweep(workloads::scenario_grep_make(1), "flexfetch");
  print_sweep(workloads::scenario_grep_make(1), "disk-only");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
