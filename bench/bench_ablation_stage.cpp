// Ablation C — the evaluation-stage length (Section 2.2). The paper uses
// 40 s: long enough for stable estimates, short enough for timely
// correction. This bench sweeps the threshold.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flexfetch.hpp"
#include "core/stage.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"

using namespace flexfetch;

namespace {

void run_sweep(const workloads::ScenarioBundle& scenario) {
  std::printf("--- %s ---\n", scenario.name.c_str());
  std::printf("%-14s %10s %12s %12s %9s %9s\n", "stage_len[s]", "stages",
              "energy[J]", "makespan[s]", "audits", "splices");
  for (const double len : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    core::FlexFetchConfig config;
    config.stage_min_length = Seconds{len};
    core::FlexFetchPolicy policy(config, scenario.profiles);
    sim::Simulator simulator(sim::SimConfig{}, scenario.programs, policy);
    const auto r = simulator.run();
    std::printf("%-14.0f %10llu %12.1f %12.1f %9llu %9llu\n", len,
                static_cast<unsigned long long>(policy.stats().stages_entered),
                r.total_energy().value(), r.makespan.value(),
                static_cast<unsigned long long>(policy.stats().audit_overrides),
                static_cast<unsigned long long>(policy.stats().splice_switches));
  }
  std::printf("\n");
}

void BM_StageSegmentation(benchmark::State& state) {
  const auto scenario = workloads::scenario_grep_make(1);
  const auto merged =
      core::Profile::merge(scenario.profiles, "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segment_stages(merged, Seconds{40.0}).size());
  }
}
BENCHMARK(BM_StageSegmentation);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  std::printf("=== Ablation C: evaluation-stage length ===\n");
  std::printf("(paper uses 40 s)\n\n");
  run_sweep(workloads::scenario_grep_make(1));
  run_sweep(workloads::scenario_stale_acroread(1));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
