// Ablation G — the disk spin-down timeout (the paper's Section 4 related
// work: fixed thresholds [6] vs adaptive ones [7]). Swept on the two
// workloads at the opposite ends of the idle-gap spectrum: Thunderbird's
// email phase (~22 s gaps, straddling the default) and mplayer's 40 s
// refills, under Disk-only and under FlexFetch.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness.hpp"
#include "policies/factory.hpp"

using namespace flexfetch;

namespace {

sim::SimResult run(const workloads::ScenarioBundle& scenario,
                   const std::string& policy_name, double timeout,
                   bool adaptive) {
  sim::SimConfig config;
  if (timeout > 0) config.disk.spin_down_timeout = Seconds{timeout};
  config.adaptive_disk_timeout = adaptive;
  auto policy = policies::make_policy(policy_name, scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  return simulator.run();
}

void sweep(const workloads::ScenarioBundle& scenario,
           const std::string& policy_name) {
  std::printf("--- %s under %s ---\n", scenario.name.c_str(),
              policy_name.c_str());
  std::printf("%-14s %12s %10s %12s\n", "timeout[s]", "energy[J]", "spinups",
              "makespan[s]");
  for (const double timeout : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    const auto r = run(scenario, policy_name, timeout, false);
    std::printf("%-14.0f %12.1f %10llu %12.1f\n", timeout, r.total_energy().value(),
                static_cast<unsigned long long>(r.disk_counters.spin_ups),
                r.makespan.value());
  }
  const auto r = run(scenario, policy_name, 0, true);
  std::printf("%-14s %12.1f %10llu %12.1f\n", "adaptive", r.total_energy().value(),
              static_cast<unsigned long long>(r.disk_counters.spin_ups),
              r.makespan.value());
  std::printf("\n");
}

void BM_AdaptiveTimeoutThunderbird(benchmark::State& state) {
  const auto scenario = workloads::scenario_thunderbird(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run(scenario, "disk-only", 0, true).total_energy());
  }
}
BENCHMARK(BM_AdaptiveTimeoutThunderbird)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false);
  std::printf("=== Ablation G: disk spin-down timeout (fixed vs adaptive) ===\n\n");
  sweep(workloads::scenario_thunderbird(1), "disk-only");
  sweep(workloads::scenario_mplayer(1), "disk-only");
  sweep(workloads::scenario_thunderbird(1), "flexfetch");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
