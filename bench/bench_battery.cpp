// Battery-adaptive loss-rate benchmark (ROADMAP item 2): the degeneracy
// gate plus the adaptive-vs-static ablation, recorded in BENCH_battery.json.
//
//   ./build/bench/bench_battery [--jobs N] [--seed S] [--out FILE] [--quick]
//
// Two parts:
//
//  1. Degeneracy gate — the full standard sweep grid is run twice, once
//     with the static "flexfetch" policy and once with "flexfetch" replaced
//     by "flexfetch-adaptive:constant@0.25". Every numeric field of every
//     cell must match bit-for-bit: the constant curve *is* the static knob,
//     so any drift means the adaptive plumbing changed decisions it must
//     not touch. A mismatch exits non-zero (CI gates on this).
//
//  2. Adaptive-vs-static ablation — the first two scenarios are run at
//     initial battery fractions {0.05, 0.25, 0.5, 1.0} plus a wall-power
//     row, under the static policy and the three adaptive curves (linear,
//     step, horizon-ratio). The summary records each curve's low-battery
//     energy saving vs static — the headline number for the
//     battery-horizon-adaptive family.
//
// --quick shrinks both parts to one scenario (the CI perf-smoke leg).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "policies/factory.hpp"
#include "sim/sweep.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

constexpr const char* kConstantSpec = "flexfetch-adaptive:constant@0.25";

/// Numeric-field equality — results_identical from bench_sweep minus the
/// policy name, which legitimately differs ("FlexFetch" vs
/// "FlexFetch-adaptive(constant@0.25)").
bool numerically_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a.makespan == b.makespan && a.io_time == b.io_time &&
         a.total_energy() == b.total_energy() &&
         a.disk_energy() == b.disk_energy() &&
         a.wnic_energy() == b.wnic_energy() && a.syscalls == b.syscalls &&
         a.disk_requests == b.disk_requests &&
         a.net_requests == b.net_requests && a.disk_bytes == b.disk_bytes &&
         a.net_bytes == b.net_bytes;
}

struct AblationRow {
  std::string scenario;
  std::string policy;   ///< Factory spec string.
  std::string curve;    ///< Short label ("static", "linear", ...).
  double initial_fraction = 1.0;
  bool wall_power = false;
  double energy_j = 0.0;
  double makespan_s = 0.0;
  double io_time_s = 0.0;
  std::uint64_t net_bytes = 0;
  std::uint64_t disk_bytes = 0;
};

/// The pack the ablation runs on: small enough that a low starting
/// fraction depletes within a scenario, so the horizon actually moves.
energy::BatteryParams ablation_battery(double fraction, bool wall) {
  energy::BatteryParams b;
  b.capacity = Joules{20000.0};
  b.base_drain = Watts{10.0};
  b.initial_fraction = fraction;
  b.on_wall_power = wall;
  return b;
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_battery: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  int jobs = 0;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_battery.json";
  bool quick = false;
  bench::ParsedFlags flags;
  flags.add("jobs", &jobs, "N");
  flags.add("seed", &seed, "S");
  flags.add("out", &out_path, "FILE");
  flags.add("quick", &quick);
  flags.parse(argc, argv);
  jobs = sim::resolve_jobs_detail(jobs).effective;

  auto scenarios = workloads::all_scenarios(seed);
  const std::size_t gate_scenarios = quick ? 1 : scenarios.size();

  // -------------------------------------------------------------------------
  // Part 1: the constant == static degeneracy gate.
  bench::SweepSpec spec;
  spec.policies = policies::standard_policy_names();
  std::vector<sim::SweepCell> static_cells;
  for (std::size_t s = 0; s < gate_scenarios; ++s) {
    auto figure = bench::figure_cells(scenarios[s], spec);
    static_cells.insert(static_cells.end(), figure.begin(), figure.end());
  }
  std::vector<sim::SweepCell> adaptive_cells = static_cells;
  for (auto& cell : adaptive_cells) {
    if (cell.policy == "flexfetch") cell.policy = kConstantSpec;
  }

  std::printf("degeneracy gate: %zu cells x 2 (static vs %s), jobs=%d\n",
              static_cells.size(), kConstantSpec, jobs);
  const auto static_results = sim::run_sweep(static_cells, {.jobs = jobs});
  const auto adaptive_results = sim::run_sweep(adaptive_cells, {.jobs = jobs});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < static_results.size(); ++i) {
    if (!numerically_identical(static_results[i], adaptive_results[i])) {
      ++mismatches;
      std::fprintf(stderr,
                   "DEGENERACY VIOLATION at cell %zu (%s / %s / %s=%g): "
                   "constant@0.25 differs from the static policy\n",
                   i, static_cells[i].scenario->name.c_str(),
                   static_cells[i].policy.c_str(),
                   static_cells[i].axis.c_str(), static_cells[i].axis_value);
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "degeneracy gate FAILED: %zu/%zu cells differ\n",
                 mismatches, static_results.size());
    return 1;
  }
  std::printf("degeneracy gate: constant@0.25 bit-identical to static across "
              "%zu cells\n",
              static_results.size());

  // -------------------------------------------------------------------------
  // Part 2: adaptive-vs-static battery ablation. mplayer leads: it is the
  // scenario whose energy/loss-rate curve still falls past 0.25 at the
  // chosen network point, so "aggressive near empty" has real headroom
  // over the paper's static 25% knob.
  std::vector<std::size_t> ablation_idx = {1, 0};  // mplayer, grep+make.
  if (quick) ablation_idx.resize(1);
  const std::vector<double> fractions = {0.05, 0.25, 0.5, 1.0};
  const std::vector<std::pair<std::string, std::string>> curves = {
      {"static", "flexfetch"},
      {"linear", "flexfetch-adaptive:linear"},
      {"step", "flexfetch-adaptive:step@0.2:0.05:0.5"},
      {"horizon-ratio", "flexfetch-adaptive:horizon-ratio@1800:0.05:0.5"},
  };

  std::vector<sim::SweepCell> cells;
  std::vector<AblationRow> rows;
  for (const std::size_t s : ablation_idx) {
    for (const auto& [curve, policy] : curves) {
      auto push = [&](double fraction, bool wall) {
        sim::SweepCell cell;
        cell.scenario = &scenarios[s];
        cell.policy = policy;
        cell.config.battery = ablation_battery(fraction, wall);
        // A constrained network point (2 Mbps, the 802.11b low rate):
        // here rule 3's time-loss bound still bites between 0.25 and
        // 0.5, so an adaptive rate moves real decisions. At the default
        // 11 Mbps / 1 ms point the energy/loss-rate curve is flat past
        // ~0.25 and every curve trivially ties the static policy.
        cell.wnic = device::WnicParams{}.with_bandwidth_mbps(2.0);
        cell.axis = wall ? "wall_power" : "initial_fraction";
        cell.axis_value = wall ? 1.0 : fraction;
        cells.push_back(cell);
        AblationRow row;
        row.scenario = scenarios[s].name;
        row.policy = policy;
        row.curve = curve;
        row.initial_fraction = fraction;
        row.wall_power = wall;
        rows.push_back(row);
      };
      for (const double fraction : fractions) push(fraction, false);
      push(1.0, true);  // Plugged in: adaptive curves stop trading.
    }
  }

  std::printf("ablation: %zu scenarios x %zu curves x %zu battery rows = %zu "
              "cells\n",
              ablation_idx.size(), curves.size(), fractions.size() + 1,
              cells.size());
  const auto results = sim::run_sweep(cells, {.jobs = jobs});
  for (std::size_t i = 0; i < results.size(); ++i) {
    rows[i].energy_j = results[i].total_energy().value();
    rows[i].makespan_s = results[i].makespan.value();
    rows[i].io_time_s = results[i].io_time.value();
    rows[i].net_bytes = results[i].net_bytes.value();
    rows[i].disk_bytes = results[i].disk_bytes.value();
  }

  // Headline: each curve's energy saving vs static at the lowest battery.
  auto find_row = [&](const std::string& scenario, const std::string& curve,
                      double fraction, bool wall) -> const AblationRow* {
    for (const AblationRow& r : rows) {
      if (r.scenario == scenario && r.curve == curve && r.wall_power == wall &&
          (wall || r.initial_fraction == fraction)) {
        return &r;
      }
    }
    return nullptr;
  };

  struct Headline {
    std::string scenario;
    std::string curve;
    double static_j = 0.0;
    double adaptive_j = 0.0;
    double savings_pct = 0.0;
  };
  std::vector<Headline> headlines;
  const double low = fractions.front();
  for (const std::size_t s : ablation_idx) {
    const std::string& name = scenarios[s].name;
    const AblationRow* st = find_row(name, "static", low, false);
    if (st == nullptr || st->energy_j <= 0.0) continue;
    for (const auto& [curve, policy] : curves) {
      if (curve == "static") continue;
      const AblationRow* ad = find_row(name, curve, low, false);
      if (ad == nullptr) continue;
      Headline h;
      h.scenario = name;
      h.curve = curve;
      h.static_j = st->energy_j;
      h.adaptive_j = ad->energy_j;
      h.savings_pct = 100.0 * (st->energy_j - ad->energy_j) / st->energy_j;
      headlines.push_back(h);
      std::printf("low battery (%.0f%%), %s: %s %.1f J vs static %.1f J "
                  "(%+.1f%% energy saving)\n",
                  100.0 * low, name.c_str(), curve.c_str(), h.adaptive_j,
                  h.static_j, h.savings_pct);
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  os << "{\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"degeneracy_gate\": {\"cells\": " << static_results.size()
     << ", \"policy\": \"" << kConstantSpec << "\", \"identical\": true},\n";
  os << "  \"battery\": {\"capacity_j\": 20000, \"base_drain_w\": 10},\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AblationRow& r = rows[i];
    os << "    {\"scenario\": \"" << r.scenario << "\", \"curve\": \""
       << r.curve << "\", \"policy\": \"" << r.policy
       << "\", \"initial_fraction\": " << r.initial_fraction
       << ", \"wall_power\": " << (r.wall_power ? "true" : "false")
       << ",\n     \"energy_j\": " << r.energy_j
       << ", \"makespan_s\": " << r.makespan_s
       << ", \"io_time_s\": " << r.io_time_s
       << ", \"net_bytes\": " << r.net_bytes
       << ", \"disk_bytes\": " << r.disk_bytes << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"summary\": {\"low_battery_fraction\": " << low
     << ", \"savings_vs_static\": [\n";
  for (std::size_t i = 0; i < headlines.size(); ++i) {
    const Headline& h = headlines[i];
    os << "    {\"scenario\": \"" << h.scenario << "\", \"curve\": \""
       << h.curve << "\", \"static_energy_j\": " << h.static_j
       << ", \"adaptive_energy_j\": " << h.adaptive_j
       << ", \"savings_pct\": " << h.savings_pct << "}"
       << (i + 1 < headlines.size() ? "," : "") << "\n";
  }
  os << "  ]}\n";
  os << "}\n";
  std::printf("wrote %s (%zu ablation cells)\n", out_path.c_str(),
              rows.size());
  return 0;
}
