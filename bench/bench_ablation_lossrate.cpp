// Ablation A — the user-specified maximum tolerable performance loss rate
// (Section 2.2). The paper fixes it at 25%; this bench sweeps it to show
// the energy/performance trade-off it controls.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flexfetch.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"

using namespace flexfetch;

namespace {

void run_sweep(const workloads::ScenarioBundle& scenario) {
  std::printf("--- %s ---\n", scenario.name.c_str());
  std::printf("%-12s %14s %14s %14s %14s\n", "loss_rate", "energy[J]",
              "makespan[s]", "disk[J]", "wnic[J]");
  for (const double rate : {0.0, 0.05, 0.10, 0.25, 0.50, 1.0, 4.0}) {
    core::FlexFetchConfig config;
    config.loss_rate = rate;
    core::FlexFetchPolicy policy(config, scenario.profiles);
    sim::Simulator simulator(sim::SimConfig{}, scenario.programs, policy);
    const auto r = simulator.run();
    std::printf("%-12.2f %14.1f %14.1f %14.1f %14.1f\n", rate,
                r.total_energy(), r.makespan, r.disk_energy(),
                r.wnic_energy());
  }
  std::printf("\n");
}

void BM_LossRateDecision(benchmark::State& state) {
  const core::Estimate disk{.time = 10.0, .energy = 100.0};
  const core::Estimate net{.time = 11.0, .energy = 60.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decide_source(disk, net, 0.25));
  }
}
BENCHMARK(BM_LossRateDecision);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation A: maximum tolerable performance loss rate ===\n");
  std::printf("(paper uses 25%%; rule 3 of Section 2.2)\n\n");
  run_sweep(workloads::scenario_grep_make(1));
  run_sweep(workloads::scenario_mplayer(1));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
