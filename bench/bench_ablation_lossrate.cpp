// Ablation A — the user-specified maximum tolerable performance loss rate
// (Section 2.2). The paper fixes it at 25%; this bench sweeps it to show
// the energy/performance trade-off it controls.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flexfetch.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"

using namespace flexfetch;

namespace {

void run_lossrate_sweep(const workloads::ScenarioBundle& scenario, int jobs) {
  std::printf("--- %s ---\n", scenario.name.c_str());
  std::printf("%-12s %14s %14s %14s %14s\n", "loss_rate", "energy[J]",
              "makespan[s]", "disk[J]", "wnic[J]");
  const std::vector<double> rates = {0.0, 0.05, 0.10, 0.25, 0.50, 1.0, 4.0};
  std::vector<sim::SweepCell> cells;
  for (const double rate : rates) {
    sim::SweepCell cell;
    cell.scenario = &scenario;
    cell.policy = "flexfetch";
    cell.loss_rate = rate;
    cell.axis = "loss_rate";
    cell.axis_value = rate;
    cells.push_back(std::move(cell));
  }
  const auto results = sim::run_sweep(cells, {.jobs = jobs});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-12.2f %14.1f %14.1f %14.1f %14.1f\n", rates[i],
                r.total_energy().value(), r.makespan.value(), r.disk_energy().value(),
                r.wnic_energy().value());
  }
  std::printf("\n");
}

void BM_LossRateDecision(benchmark::State& state) {
  const core::Estimate disk{.time = Seconds{10.0}, .energy = Joules{100.0}};
  const core::Estimate net{.time = Seconds{11.0}, .energy = Joules{60.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decide_source(disk, net, 0.25));
  }
}
BENCHMARK(BM_LossRateDecision);

}  // namespace

int main(int argc, char** argv) {
  const int jobs =
      bench::parse_harness_flags(argc, argv, /*telemetry_flags=*/false).jobs;
  std::printf("=== Ablation A: maximum tolerable performance loss rate ===\n");
  std::printf("(paper uses 25%%; rule 3 of Section 2.2)\n\n");
  run_lossrate_sweep(workloads::scenario_grep_make(1), jobs);
  run_lossrate_sweep(workloads::scenario_mplayer(1), jobs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
