// Figure 5 — "Acroread: Energy consumptions with various WNIC bandwidths
// and latencies" (Section 3.3.5, the invalid-profile scenario). The profile
// was recorded from a run over 2 MB PDFs at 25 s intervals; the current run
// scans 20 MB PDFs every 10 s.
//
// Expected shape (paper): FlexFetch pays one evaluation stage to discover
// the stale profile, then switches to the disk — far better than
// FlexFetch-static, modestly worse than BlueFS.

#include <benchmark/benchmark.h>

#include "harness.hpp"

using namespace flexfetch;

namespace {

void BM_SimulateAcroreadFlexFetch(benchmark::State& state) {
  const auto scenario = workloads::scenario_stale_acroread(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "flexfetch",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_SimulateAcroreadFlexFetch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::SweepSpec spec;
  const auto opts = bench::parse_harness_flags(argc, argv);
  spec.jobs = opts.jobs;
  spec.metrics = opts.metrics;
  spec.trace_out = opts.trace_out;
  spec.fault_seed = opts.fault_seed;
  spec.policies = {"flexfetch", "flexfetch-static", "bluefs", "disk-only",
                   "wnic-only"};
  bench::print_figure("Figure 5 (Acroread, stale profile)",
                      workloads::scenario_stale_acroread(1), spec);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
