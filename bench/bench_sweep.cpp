// Full evaluation-grid sweep driver: every Section 3.3 scenario under the
// standard policy set across all 17 WNIC sweep points, fanned out by the
// parallel sweep engine.
//
//   ./build/bench/bench_sweep [--jobs N] [--policies a,b,c] [--seed S]
//                             [--out FILE] [--no-serial] [--metrics]
//                             [--trace-out FILE] [--fault-seed S]
//                             [--aggregate-out FILE] [--cells=off]
//
// Runs the grid once serially (jobs=1, the baseline) and once with N
// workers, verifies the parallel results are bit-identical to the serial
// ones, and writes a machine-readable BENCH_sweep.json with per-cell
// energy/time plus the wall-clock speedup — the perf trajectory record
// tracked across PRs. When only one worker is effective the baseline pass
// would duplicate the measured pass bit-for-bit, so it is skipped and the
// JSON carries `"serial_fallback": true` instead of a speedup.
//
// The parallel pass streams through run_sweep_streaming: each cell result
// is checked against the serial baseline and folded into per-stratum
// aggregates (Welford stats + merged metrics/histograms) the moment it
// completes, in grid order. --aggregate-out writes that constant-size
// aggregate record.
//
// --cells=off switches to aggregate-only operation: neither pass keeps a
// per-cell results vector, so peak memory is bounded by strata count, not
// grid size. The determinism gate then compares O(1)-memory streaming
// digests (fold_result_digest over every cell in grid order) instead of
// the cell-by-cell vectors, and the output record (still --out) is the
// cells-free summary schema with the digest recorded. Incompatible with
// --trace-out, which needs cell 0's materialized events.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "harness.hpp"
#include "policies/factory.hpp"
#include "sim/sweep.hpp"
#include "telemetry/exporters.hpp"
#include "workloads/scenarios.hpp"

using namespace flexfetch;

namespace {

double wall_seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

/// Field-by-field equality over everything the JSON emitter records.
bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  return a.policy == b.policy && a.makespan == b.makespan &&
         a.io_time == b.io_time && a.total_energy() == b.total_energy() &&
         a.disk_energy() == b.disk_energy() &&
         a.wnic_energy() == b.wnic_energy() && a.syscalls == b.syscalls &&
         a.disk_requests == b.disk_requests &&
         a.net_requests == b.net_requests && a.disk_bytes == b.disk_bytes &&
         a.net_bytes == b.net_bytes;
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_sweep: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  int jobs = 0;
  std::uint64_t seed = 1;
  std::uint64_t fault_seed = 0;
  std::string out_path = "BENCH_sweep.json";
  std::string trace_out;
  std::string aggregate_out;
  bool metrics = false;
  std::vector<std::string> policy_names = policies::standard_policy_names();
  bool no_serial = false;
  std::string policies_csv;
  std::string cells_mode = "on";
  bench::ParsedFlags flags;
  flags.add("jobs", &jobs, "N");
  flags.add("policies", &policies_csv, "a,b,c");
  flags.add("seed", &seed, "S");
  flags.add("fault-seed", &fault_seed, "S");
  flags.add("out", &out_path, "FILE");
  flags.add("no-serial", &no_serial);
  flags.add("metrics", &metrics);
  flags.add("trace-out", &trace_out, "FILE");
  flags.add("aggregate-out", &aggregate_out, "FILE");
  flags.add("cells", &cells_mode, "on|off");
  flags.parse(argc, argv);
  if (!policies_csv.empty()) policy_names = split_csv(policies_csv);
  if (cells_mode != "on" && cells_mode != "off") {
    std::fprintf(stderr, "bench_sweep: --cells takes 'on' or 'off'\n");
    return 2;
  }
  const bool cells_off = cells_mode == "off";
  if (cells_off && !trace_out.empty()) {
    std::fprintf(stderr, "bench_sweep: --cells=off cannot keep cell 0's "
                         "events; drop --trace-out\n");
    return 2;
  }
  const sim::JobsResolution jobs_resolution = sim::resolve_jobs_detail(jobs);
  jobs = jobs_resolution.effective;
  // With one effective worker the streaming pass below already runs the
  // grid serially — a separate jobs=1 baseline would be a bit-identical
  // duplicate of it, so skip the redundant pass and flag the fallback.
  const bool serial_fallback = jobs <= 1;
  const bool run_serial_baseline = !no_serial && !serial_fallback;

  const auto scenarios = workloads::all_scenarios(seed);
  bench::SweepSpec spec;
  spec.policies = policy_names;
  spec.fault_seed = fault_seed;

  std::vector<sim::SweepCell> cells;
  for (const auto& scenario : scenarios) {
    auto figure = bench::figure_cells(scenario, spec);
    cells.insert(cells.end(), figure.begin(), figure.end());
  }
  if (metrics || !trace_out.empty()) {
    for (auto& cell : cells) {
      // Metrics-only telemetry (the default, ring_capacity 0): per-cell
      // counters and histograms land in the JSON record without any cell
      // admitting — or even constructing — a single event.
      cell.config.telemetry.enabled = true;
    }
    if (!trace_out.empty()) {
      // Full event capture is a per-cell opt-in.
      cells[0].config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
    }
  }
  std::printf("sweep grid: %zu scenarios x %zu policies x %zu points = %zu "
              "cells, jobs=%d\n",
              scenarios.size(), spec.policies.size(),
              spec.latencies_ms.size() + spec.bandwidths_mbps.size(),
              cells.size(), jobs);
  if (fault_seed != 0) {
    std::printf("fault injection: schedule seed %llu applied to every cell\n",
                static_cast<unsigned long long>(fault_seed));
  }

  sim::SweepRunInfo info;
  info.jobs = jobs;
  info.jobs_requested = jobs_resolution.requested;
  info.serial_fallback = serial_fallback;
  if (serial_fallback) {
    std::printf("serial fallback: 1 effective worker, the single pass below "
                "is its own jobs=1 baseline (no separate serial pass, no "
                "speedup to measure)\n");
  }

  if (cells_off) {
    // Aggregate-only operation: both passes stream, nothing per-cell is
    // retained, and the determinism gate runs on order-sensitive digests.
    std::uint64_t serial_digest = sim::kResultDigestSeed;
    if (run_serial_baseline) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::run_sweep_streaming(
          cells, {.jobs = 1},
          [&](std::size_t, const sim::SweepCell&, sim::SimResult&& result) {
            serial_digest = sim::fold_result_digest(serial_digest, result);
          });
      info.serial_wall_seconds = wall_seconds_since(t0);
      std::printf("serial  (jobs=1): %.2f s\n", info.serial_wall_seconds);
    }

    sim::SweepAggregator aggregator;
    std::uint64_t digest = sim::kResultDigestSeed;
    const auto t1 = std::chrono::steady_clock::now();
    sim::run_sweep_streaming(
        cells, {.jobs = jobs},
        [&](std::size_t, const sim::SweepCell& cell, sim::SimResult&& result) {
          digest = sim::fold_result_digest(digest, result);
          aggregator.add(cell, result);
        });
    info.wall_seconds = wall_seconds_since(t1);
    std::printf("parallel (jobs=%d): %.2f s", jobs, info.wall_seconds);
    if (run_serial_baseline) std::printf("  speedup=%.2fx", info.speedup());
    std::printf("\n");

    if (run_serial_baseline) {
      if (digest != serial_digest) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: parallel stream digest "
                     "%016llx != serial %016llx\n",
                     static_cast<unsigned long long>(digest),
                     static_cast<unsigned long long>(serial_digest));
        return 1;
      }
      std::printf("determinism: parallel stream digest matches serial "
                  "baseline (%zu cells)\n",
                  cells.size());
    }

    info.peak_rss_bytes = bench::peak_rss_bytes();
    std::ofstream os(out_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    sim::write_sweep_summary_json(os, aggregator, info, cells.size(), digest);
    std::printf("wrote %s (cells=off, %zu strata)\n", out_path.c_str(),
                aggregator.strata().size());

    if (!aggregate_out.empty()) {
      std::ofstream agg_os(aggregate_out);
      if (!agg_os) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     aggregate_out.c_str());
        return 1;
      }
      sim::write_aggregate_json(agg_os, aggregator, info);
      std::printf("wrote %s (%zu strata)\n", aggregate_out.c_str(),
                  aggregator.strata().size());
    }
    return 0;
  }

  std::vector<sim::SimResult> serial;
  if (run_serial_baseline) {
    const auto t0 = std::chrono::steady_clock::now();
    serial = sim::run_sweep(cells, {.jobs = 1});
    info.serial_wall_seconds = wall_seconds_since(t0);
    std::printf("serial  (jobs=1): %.2f s\n", info.serial_wall_seconds);
  }

  // The parallel pass streams: each result is verified against the serial
  // baseline and folded into the aggregator as it completes (in grid
  // order), then kept for the per-cell JSON record.
  sim::SweepAggregator aggregator;
  std::vector<sim::SimResult> parallel(cells.size());
  std::size_t mismatches = 0;
  const auto t1 = std::chrono::steady_clock::now();
  sim::run_sweep_streaming(
      cells, {.jobs = jobs},
      [&](std::size_t i, const sim::SweepCell& cell, sim::SimResult&& result) {
        if (run_serial_baseline && !results_identical(serial[i], result)) {
          ++mismatches;
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION at cell %zu (%s / %s): parallel "
                       "result differs from serial baseline\n",
                       i, cell.scenario->name.c_str(), cell.policy.c_str());
        }
        aggregator.add(cell, result);
        parallel[i] = std::move(result);
      });
  info.wall_seconds = wall_seconds_since(t1);
  std::printf("parallel (jobs=%d): %.2f s", jobs, info.wall_seconds);
  if (run_serial_baseline) std::printf("  speedup=%.2fx", info.speedup());
  std::printf("\n");

  if (mismatches > 0) return 1;
  if (run_serial_baseline) {
    std::printf("determinism: parallel results identical to serial baseline "
                "(%zu cells)\n",
                cells.size());
  }

  info.peak_rss_bytes = bench::peak_rss_bytes();
  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  sim::write_sweep_json(os, cells, parallel, info);
  std::printf("wrote %s\n", out_path.c_str());

  if (!aggregate_out.empty()) {
    std::ofstream agg_os(aggregate_out);
    if (!agg_os) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   aggregate_out.c_str());
      return 1;
    }
    sim::write_aggregate_json(agg_os, aggregator, info);
    std::printf("wrote %s (%zu strata)\n", aggregate_out.c_str(),
                aggregator.strata().size());
  }

  if (!trace_out.empty()) {
    std::ofstream trace_os(trace_out);
    if (!trace_os) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    telemetry::write_chrome_trace(
        trace_os,
        std::span<const telemetry::TraceEvent>(parallel[0].trace_events),
        parallel[0].trace_events_dropped, &parallel[0].metrics);
    std::printf("wrote Chrome trace of cell 0 (%s / %s) to %s\n",
                cells[0].scenario->name.c_str(), cells[0].policy.c_str(),
                trace_out.c_str());
  }
  return 0;
}
