// Figure 2 — "mplayer: Energy consumptions with various WNIC bandwidths and
// latencies" (Section 3.3.2, the media streaming scenario).
//
// Expected shape (paper): FlexFetch tracks WNIC-only; BlueFS wastes energy
// on both devices; in the bandwidth sweep FlexFetch switches to the disk
// below ~2 Mbps and saves substantially versus WNIC-only there.

#include <benchmark/benchmark.h>

#include "harness.hpp"

using namespace flexfetch;

namespace {

void BM_SimulateMplayerFlexFetch(benchmark::State& state) {
  const auto scenario = workloads::scenario_mplayer(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "flexfetch",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_SimulateMplayerFlexFetch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::SweepSpec spec;
  const auto opts = bench::parse_harness_flags(argc, argv);
  spec.jobs = opts.jobs;
  spec.metrics = opts.metrics;
  spec.trace_out = opts.trace_out;
  spec.fault_seed = opts.fault_seed;
  spec.policies = {"flexfetch", "bluefs", "disk-only", "wnic-only"};
  bench::print_figure("Figure 2 (mplayer)", workloads::scenario_mplayer(1),
                      spec);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
