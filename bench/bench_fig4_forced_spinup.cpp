// Figure 4 — "grep+make / xmms: Energy consumptions with various WNIC
// bandwidths and latencies" (Section 3.3.4, the forced disk spin-up
// scenario). xmms plays MP3s stored only on the local disk, keeping the
// disk spinning while the profiled programming workload runs.
//
// Expected shape (paper): FlexFetch observes the forced spin-up and rides
// the disk, substantially beating FlexFetch-static at low latencies; the
// two curves merge as rising latency pushes both onto the disk.

#include <benchmark/benchmark.h>

#include "harness.hpp"

using namespace flexfetch;

namespace {

void BM_SimulateForcedSpinupFlexFetch(benchmark::State& state) {
  const auto scenario = workloads::scenario_forced_spinup(1);
  for (auto _ : state) {
    const auto r = bench::run_once(scenario, "flexfetch",
                                   device::WnicParams::cisco_aironet350());
    benchmark::DoNotOptimize(r.total_energy());
  }
}
BENCHMARK(BM_SimulateForcedSpinupFlexFetch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::SweepSpec spec;
  const auto opts = bench::parse_harness_flags(argc, argv);
  spec.jobs = opts.jobs;
  spec.metrics = opts.metrics;
  spec.trace_out = opts.trace_out;
  spec.fault_seed = opts.fault_seed;
  spec.policies = {"flexfetch", "flexfetch-static", "bluefs", "disk-only",
                   "wnic-only"};
  bench::print_figure("Figure 4 (grep+make / xmms)",
                      workloads::scenario_forced_spinup(1), spec);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
