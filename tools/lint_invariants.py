#!/usr/bin/env python3
"""Repo-specific invariant linter — rules the compilers cannot express.

Run from the repository root (CI runs it as its own job):

    python3 tools/lint_invariants.py

Rules
-----
R1  unit-typed signatures: public device/sim headers must not declare
    function parameters as raw `double` when the parameter name denotes a
    dimensioned quantity (time, energy, power, bandwidth, byte counts) —
    those have strong types in common/units.hpp. Host-side wall-clock
    measurements (`wall_seconds`) are exempt: they measure the harness,
    not the simulation.

R2  estimator purity: the counterfactual replay path
    (src/core/estimator.cpp) must never emit telemetry. Replicas made via
    detached_copy() are detached from the live recorder precisely so an
    estimate cannot leak phantom events; any mention of telemetry in that
    translation unit is a leak waiting to happen.

R3  deterministic randomness: simulations must be bit-reproducible from an
    explicit seed. `std::rand`/`srand` (hidden global state),
    `std::random_device` (non-deterministic), and `std::mt19937` outside
    common/rng.hpp (stream not covered by the repo's seeding discipline)
    are banned in src/. Tests may use std::mt19937 only with an explicit
    seed expression.

R4  simulated time only: src/ must not read the host clock
    (std::chrono::*_clock, gettimeofday, clock_gettime, time(nullptr)).
    All simulation time flows from the event loop; wall-clock timing
    belongs to the bench harness.

R5  one battery model: battery fractions are defined, validated, and
    clamped only in src/energy/ (energy::clamp_fraction /
    BatteryParams::validate). A `std::clamp` applied to a battery or
    fraction quantity anywhere else in src/ silently masks out-of-range
    configuration instead of rejecting it — the clamp-drift bug this rule
    is the regression guard for (SharedMedium::add_client used to clamp
    initial_fraction into [0, 1]).

Exit status is the number of violations (0 = clean).
"""
from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

DIMENSIONED_PARAM = re.compile(
    r"\bdouble\s+(\w*(?:time|seconds|duration|latency|timeout|deadline"
    r"|energy|joules|power|watts|bandwidth|_bw|bytes|_size)\w*)\s*[,)=]",
    re.IGNORECASE)
R1_EXEMPT_NAMES = {"wall_seconds", "serial_wall_seconds"}

R3_BANNED = [
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"\bsrand\s*\("), "srand"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
]
R3_MT19937 = re.compile(r"\bstd::mt19937(?:_64)?\b")
R3_MT19937_UNSEEDED = re.compile(r"\bstd::mt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}|\(\s*\))")

R4_BANNED = [
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"),
     "host clock via std::chrono"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
]

R2_BANNED = re.compile(r"telemetry|attach_telemetry|recorder")

R5_CLAMP = re.compile(r"\bstd::clamp\b")
R5_BATTERY = re.compile(r"battery|fraction", re.IGNORECASE)


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving line structure."""
    text = re.sub(r"/\*.*?\*/",
                  lambda m: re.sub(r"[^\n]", " ", m.group(0)),
                  text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def lines_of(path: pathlib.Path):
    return strip_comments(path.read_text()).split("\n")


def main() -> int:
    violations: list[str] = []

    def report(path, lineno, rule, what):
        violations.append(f"{path.relative_to(ROOT)}:{lineno}: [{rule}] {what}")

    # R1 — raw double where a unit type exists, public device/sim headers.
    for header in sorted((ROOT / "src").glob("device/*.hpp")) + sorted(
            (ROOT / "src").glob("sim/*.hpp")):
        for i, line in enumerate(lines_of(header), 1):
            for m in DIMENSIONED_PARAM.finditer(line):
                if m.group(1) in R1_EXEMPT_NAMES:
                    continue
                report(header, i, "R1",
                       f"raw double parameter/field '{m.group(1)}' — use the "
                       "strong unit type from common/units.hpp")

    # R2 — no telemetry from the counterfactual replay TU.
    estimator = ROOT / "src" / "core" / "estimator.cpp"
    for i, line in enumerate(lines_of(estimator), 1):
        if R2_BANNED.search(line):
            report(estimator, i, "R2",
                   "telemetry reference in the counterfactual replay path "
                   "(detached_copy() replicas must stay silent)")

    # R3 — deterministic randomness.
    for src in sorted((ROOT / "src").rglob("*.?pp")):
        rel = src.relative_to(ROOT / "src")
        for i, line in enumerate(lines_of(src), 1):
            for pat, name in R3_BANNED:
                if pat.search(line):
                    report(src, i, "R3", f"{name} is banned (seeded Rng only)")
            if str(rel) != "common/rng.hpp" and R3_MT19937.search(line):
                report(src, i, "R3",
                       "std::mt19937 outside common/rng.hpp — use flexfetch::Rng")
    for src in sorted((ROOT / "tests").glob("*.cpp")) + sorted(
            (ROOT / "bench").glob("*.cpp")) + sorted(
            (ROOT / "examples").glob("*.cpp")):
        for i, line in enumerate(lines_of(src), 1):
            for pat, name in R3_BANNED:
                if pat.search(line):
                    report(src, i, "R3", f"{name} is banned (seeded Rng only)")
            if R3_MT19937_UNSEEDED.search(line):
                report(src, i, "R3", "unseeded std::mt19937 — pass an explicit seed")

    # R4 — no host clock in simulation code.
    for src in sorted((ROOT / "src").rglob("*.?pp")):
        for i, line in enumerate(lines_of(src), 1):
            for pat, name in R4_BANNED:
                if pat.search(line):
                    report(src, i, "R4", f"{name} in sim code — simulated time only")

    # R5 — battery fractions are clamped only inside the energy module.
    for src in sorted((ROOT / "src").rglob("*.?pp")):
        rel = src.relative_to(ROOT / "src")
        if rel.parts[0] == "energy":
            continue
        for i, line in enumerate(lines_of(src), 1):
            if R5_CLAMP.search(line) and R5_BATTERY.search(line):
                report(src, i, "R5",
                       "battery/fraction clamp outside src/energy/ — validate "
                       "with BatteryParams::validate() or derive the value "
                       "through the energy module")

    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)")
        for v in violations:
            print("  " + v)
    else:
        print("lint_invariants: clean")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main())
