#!/usr/bin/env python3
"""Compiler-error-driven fixer for the strong-unit migration.

Parses g++ diagnostics and applies only unambiguous rewrites:
  * literal passed where a unit type is expected    -> wrap in T{...}
  * unit compared against a numeric literal          -> wrap the literal
  * unit expression passed where double is expected  -> (expr).value()

Anything it cannot resolve mechanically is left for a human pass.
Intended as a one-off migration aid, driven by tools/ scripts; it is not
part of the build.
"""
import os
import re
import subprocess
import sys

UNIT_TYPES = {"Seconds", "Joules", "Watts", "BytesPerSecond", "Bytes"}
LITERAL_RE = re.compile(r"[0-9](?:[eE][+-]|[0-9a-fA-FxX.'])*(?:[uUlLfF]*)")

ERR_CONVERT = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: could not convert "
    r"'(?P<expr>[^']*)' from '[^']*' to 'flexfetch::(?P<type>\w+)'")
ERR_CANNOT = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: cannot convert "
    r"'(?:const )?flexfetch::(?:detail::FloatQuantity<flexfetch::\w+>|\w+)'"
    r"(?: {[^}]*})? to '(?:const )?double'")
ERR_CANNOT_UNIT = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: cannot convert "
    r"'(?:const )?(?:int|double|float|unsigned int|long unsigned int"
    r"|long long unsigned int|long int)' to 'flexfetch::(?P<type>\w+)'")
ERR_NOMATCH = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: no match for "
    r"'operator(?P<op>[<>=!+\-*/%]+)' \(operand types are "
    r"'(?P<lhs>[^']+)'(?: \{aka '[^']*'\})? and "
    r"'(?P<rhs>[^']+)'(?: \{aka '[^']*'\})?\)")
ERR_NOFUNC = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: no matching "
    r"function for call to '")
ERR_NOASSIGN = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: no match for "
    r"'operator=' \(operand types are '(?:const )?(?P<lhs>flexfetch::[^']+?)'"
    r"(?: {[^}]*})? and '(?P<rhs>[^']+?)'(?: {[^}]*})?\)")
ERR_NONSCALAR = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): error: conversion from "
    r"'(?P<src>[^']+?)'(?: {[^}]*})? to non-scalar type "
    r"'(?:const )?(?P<dst>flexfetch::[^']+?)'(?: {[^}]*})? requested")
NOTE_ARGCONV_REV = re.compile(
    r"no known conversion for argument (?P<arg>\d+) from "
    r"'(?:const )?(?P<src>flexfetch::[\w:<>]+)(?: {[^}]*})?' to "
    r"'[^']*?double[^']*?'")
NOTE_ARGCONV = re.compile(
    r"no known conversion for argument (?P<arg>\d+) from "
    r"'(?:const )?(?P<src>[\w ]+)' to '(?:const )?flexfetch::(?P<type>\w+)")
INST_CMPHELPER = re.compile(
    r"In instantiation of 'testing::AssertionResult "
    r"testing::internal::CmpHelper\w+\((?:const char\*, const char\*, )?"
    r"const T1?&, const T2?&\) \[with T1? = (?P<t1>[^;]+); T2? = (?P<t2>[^;\]]+)")
REQ_FROM = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): +required from here")
SRC_ECHO = re.compile(r"^\s*\d+\s*\|")
MARKER = re.compile(r"^(\s*)\|(\s*)(?P<marks>[~^]+)\s*$")
GTEST_MACRO = re.compile(r"\b(?:EXPECT|ASSERT)_\w+\s*\(")


def marker_span(diags, i):
    """Scan the context lines after diags[i] for a source-echo line and its
    caret/tilde marker line; return the (start, end) 0-based column span the
    compiler underlined, or None."""
    for j in range(i + 1, min(i + 4, len(diags))):
        em = SRC_ECHO.match(diags[j])
        if not em or j + 1 >= len(diags):
            continue
        echo, mark = diags[j], diags[j + 1]
        bar = echo.find("|")
        if bar < 0 or len(mark) <= bar or mark[:bar].strip() != "" \
                or bar >= len(mark) or mark[bar] != "|":
            return None
        mm = re.search(r"[~^]+", mark[bar + 1:])
        if not mm:
            return None
        start = mm.start() - 1  # content begins after "| "
        return (start, start + len(mm.group(0)))
    return None


def split_args(line, open_paren):
    """Split a single-line call's arguments at `line[open_paren] == '('` into
    (start, end) spans; None if the call does not close on this line."""
    if open_paren >= len(line) or line[open_paren] != "(":
        return None
    spans, depth, i, arg_start = [], 0, open_paren + 1, open_paren + 1
    while i < len(line):
        c = line[i]
        if c in "\"'":
            quote = c
            i += 1
            while i < len(line) and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
        elif c in "([{":
            depth += 1
        elif c == ")" and depth == 0:
            spans.append((arg_start, i))
            return [(s, _rstrip(line, s, e)) for s, e in spans]
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            spans.append((arg_start, i))
            arg_start = i + 1
            while arg_start < len(line) and line[arg_start].isspace():
                arg_start = arg_start + 1
        i += 1
    return None


def _rstrip(line, s, e):
    while e > s and line[e - 1].isspace():
        e -= 1
    return e

def unit_of(type_str):
    m = re.search(r"FloatQuantity<flexfetch::(\w+)Dim>", type_str)
    if m:
        return {"Time": "Seconds", "Energy": "Joules", "Power": "Watts",
                "Bandwidth": "BytesPerSecond"}.get(m.group(1))
    m = re.search(r"flexfetch::(\w+)", type_str)
    if m and m.group(1) in UNIT_TYPES:
        return m.group(1)
    return None

def is_numeric(type_str):
    t = type_str.replace("const ", "").strip()
    return t in {"int", "double", "float", "unsigned int", "long int",
                 "long unsigned int", "long long unsigned int",
                 "unsigned char", "short int"}

def expr_end(line, start):
    """Index just past a balanced expression starting at `start` (stops at
    a top-level ',' or ')' or ';')."""
    depth = 0
    i = start
    while i < len(line):
        c = line[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            if depth == 0:
                break
            depth -= 1
        elif c in ",;" and depth == 0:
            break
        i += 1
    while i > start and line[i - 1].isspace():
        i -= 1
    return i

def apply_fixes(path, diagnostics):
    lines = open(path).read().split("\n")
    # (line, col) -> replacement thunk; apply right-to-left per line.
    edits = []  # (line_idx, start_col, end_col, new_text)

    def wrap_span(li, start, end, unit):
        src = lines[li]
        if end > len(src) or end <= start:
            return
        expr = src[start:end]
        # Sanity: must look like an expression (starts plausibly, parens and
        # braces balanced) — a degenerate marker span (e.g. a lone ')') means
        # the diagnostic did not underline what we think it did.
        if not re.match(r"[\w(\-+.\"']", expr):
            return
        for opened, closed in (("()"), ("[]"), ("{}")):
            if expr.count(opened) != expr.count(closed):
                return
        if re.fullmatch(LITERAL_RE.pattern, expr):
            expr = expr.rstrip("uUlLfF")
        edits.append((li, start, end, f"{unit}{{{expr}}}"))

    for di, d in enumerate(diagnostics):
        m = ERR_CONVERT.match(d)
        if m and m.group("file") == path and m.group("type") in UNIT_TYPES:
            li = int(m.group("line")) - 1
            col = int(m.group("col")) - 1
            src = lines[li]
            lm = LITERAL_RE.match(src, col)
            if lm and re.fullmatch(r"[0-9'.eE+\-xXuUlLfF]+", m.group("expr")):
                tok = lm.group(0).rstrip("uUlL")
                edits.append((li, col, lm.end(), f"{m.group('type')}{{{tok}}}"))
            else:
                span = marker_span(diagnostics, di)
                if span:
                    wrap_span(li, span[0], span[1], m.group("type"))
            continue
        m = ERR_CANNOT_UNIT.match(d)
        if m and m.group("file") == path and m.group("type") in UNIT_TYPES:
            li = int(m.group("line")) - 1
            col = int(m.group("col")) - 1
            src = lines[li]
            lm = LITERAL_RE.match(src, col)
            if lm:
                tok = lm.group(0).rstrip("uUlLfF")
                edits.append((li, col, lm.end(), f"{m.group('type')}{{{tok}}}"))
            else:
                span = marker_span(diagnostics, di)
                if span:
                    wrap_span(li, span[0], span[1], m.group("type"))
            continue
        m = ERR_NOFUNC.match(d)
        if m and m.group("file") == path:
            # Find the first candidate note naming a numeric->unit (wrap) or
            # unit->double (.value()) argument mismatch, then rewrite that
            # argument of the (single-line) call.
            target = unwrap = None
            for j in range(di + 1, min(di + 40, len(diagnostics))):
                if " error: " in diagnostics[j]:
                    break
                nm = NOTE_ARGCONV.search(diagnostics[j])
                if nm and nm.group("type") in UNIT_TYPES \
                        and is_numeric(nm.group("src")):
                    target = (int(nm.group("arg")), nm.group("type"))
                    break
                rm = NOTE_ARGCONV_REV.search(diagnostics[j])
                if rm and unit_of(rm.group("src")):
                    unwrap = int(rm.group("arg"))
                    break
            if not target and not unwrap:
                continue
            li = int(m.group("line")) - 1
            col = int(m.group("col")) - 1
            src = lines[li]
            paren = src.find("(", col)
            spans = split_args(src, paren) if paren >= 0 else None
            argno = target[0] if target else unwrap
            if spans and 1 <= argno <= len(spans):
                s, e = spans[argno - 1]
                if target:
                    wrap_span(li, s, e, target[1])
                elif re.fullmatch(r"[\w.:\->\[\]()]+", src[s:e]):
                    edits.append((li, s, e, f"{src[s:e]}.value()"))
                else:
                    edits.append((li, s, e, f"({src[s:e]}).value()"))
            continue
        m = ERR_NOASSIGN.match(d)
        if m and m.group("file") == path:
            lhs_u = unit_of(m.group("lhs"))
            if lhs_u and is_numeric(m.group("rhs")):
                span = marker_span(diagnostics, di)
                if span:
                    wrap_span(int(m.group("line")) - 1, span[0], span[1],
                              lhs_u)
            continue
        m = ERR_NONSCALAR.match(d)
        if m and m.group("file") == path:
            dst_u = unit_of(m.group("dst"))
            if dst_u and is_numeric(m.group("src")):
                span = marker_span(diagnostics, di)
                if span:
                    wrap_span(int(m.group("line")) - 1, span[0], span[1],
                              dst_u)
            continue
        m = INST_CMPHELPER.search(d)
        if m:
            t1u, t2u = unit_of(m.group("t1")), unit_of(m.group("t2"))
            numeric_side = None
            if t1u and is_numeric(m.group("t2")):
                numeric_side, unit = 2, t1u
            elif t2u and is_numeric(m.group("t1")):
                numeric_side, unit = 1, t2u
            if numeric_side is None:
                continue
            loc = None
            for j in range(di + 1, min(di + 8, len(diagnostics))):
                rm = REQ_FROM.match(diagnostics[j])
                if rm and rm.group("file") == path:
                    loc = int(rm.group("line")) - 1
                    break
            if loc is None:
                continue
            src = lines[loc]
            gm = GTEST_MACRO.search(src)
            if not gm:
                continue
            spans = split_args(src, gm.end() - 1)
            if spans and len(spans) == 2:
                s, e = spans[numeric_side - 1]
                wrap_span(loc, s, e, unit)
            continue
        m = ERR_CANNOT.match(d)
        if m and m.group("file") == path:
            li = int(m.group("line")) - 1
            col = int(m.group("col")) - 1
            src = lines[li]
            end = expr_end(src, col)
            if end <= col:
                continue
            expr = src[col:end]
            if re.fullmatch(r"[\w.:\->\[\]()]+", expr):
                edits.append((li, col, end, f"{expr}.value()"))
            else:
                edits.append((li, col, end, f"({expr}).value()"))
            continue
        m = ERR_NOMATCH.match(d)
        if m and m.group("file") == path:
            lhs_u, rhs_u = unit_of(m.group("lhs")), unit_of(m.group("rhs"))
            li = int(m.group("line")) - 1
            col = int(m.group("col")) - 1
            src = lines[li]
            if lhs_u and is_numeric(m.group("rhs")):
                # find operator then the literal after it
                om = re.compile(re.escape(m.group("op"))).search(src, col)
                if not om:
                    continue
                lm = LITERAL_RE.search(src, om.end())
                if not lm:
                    continue
                between = src[om.end():lm.start()]
                if between.strip() != "":
                    continue
                tok = lm.group(0).rstrip("uUlLfF")
                edits.append((li, lm.start(), lm.end(), f"{lhs_u}{{{tok}}}"))
            elif rhs_u and is_numeric(m.group("lhs")):
                lm = LITERAL_RE.match(src, col)
                if not lm:
                    continue
                tok = lm.group(0).rstrip("uUlLfF")
                edits.append((li, col, lm.end(), f"{rhs_u}{{{tok}}}"))
            continue
    if not edits:
        return 0
    # Deduplicate and apply right-to-left so columns stay valid.
    edits = sorted(set(edits), key=lambda e: (e[0], -e[1]))
    applied = 0
    done = {}  # line -> list of applied (start, end) ranges
    for li, start, end, new in edits:
        if any(start < e and s < end for s, e in done.get(li, [])):
            continue  # overlaps an edit already applied on this line
        done.setdefault(li, []).append((start, end))
        lines[li] = lines[li][:start] + new + lines[li][end:]
        applied += 1
    open(path, "w").write("\n".join(lines))
    return applied

def main():
    flags = sys.argv[1].split()
    files = sys.argv[2:]
    for path in files:
        for _ in range(12):
            env = dict(os.environ, LC_ALL="C")
            proc = subprocess.run(
                ["g++"] + flags + ["-fsyntax-only", path],
                capture_output=True, text=True, env=env)
            if proc.returncode == 0:
                print(f"{path}: clean")
                break
            diags = proc.stderr.split("\n")
            n = apply_fixes(path, diags)
            if n == 0:
                nerr = sum(1 for d in diags if " error: " in d)
                print(f"{path}: {nerr} errors left (manual)")
                break
            print(f"{path}: applied {n} fixes, recompiling")

if __name__ == "__main__":
    main()
